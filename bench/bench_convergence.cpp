// Figure 7: convergence of multi-dimensional tensor parallelism. The paper
// trains ViT on ImageNet-1k for 250 epochs and shows every tensor-parallel
// mode's test-accuracy curve lying on the PyTorch data-parallel curve. Here
// the same property is demonstrated on the synthetic classification task:
// identical data + identical seeds => per-step losses and accuracies of all
// modes coincide with the serial run.

#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "models/classifier.hpp"
#include "models/gpt.hpp"
#include "models/transformer_classifier.hpp"

using namespace ca;

namespace {

struct Curve {
  std::string label;
  std::vector<float> loss;
  std::vector<float> acc;
};

constexpr int kSteps = 30;
constexpr int kEvalEvery = 5;
constexpr std::int64_t kBatch = 32;

models::Classifier::Config model_cfg() { return {16, 32, 8, 2, /*seed=*/3}; }

data::SyntheticClassification dataset() {
  return data::SyntheticClassification(65536, 16, 8, /*seed=*/91);
}

Curve run_serial() {
  Curve c{"serial (data parallel)", {}, {}};
  auto ds = dataset();
  models::Classifier model(model_cfg());
  auto xe = ds.batch_features(50000, 512);
  auto ye = ds.batch_labels(50000, 512);
  for (int s = 0; s < kSteps; ++s) {
    auto x = ds.batch_features(s * kBatch, kBatch);
    auto y = ds.batch_labels(s * kBatch, kBatch);
    for (nn::Parameter* p : model.parameters()) p->grad.fill(0.0f);
    c.loss.push_back(model.train_batch(x, y));
    for (nn::Parameter* p : model.parameters())
      tensor::axpy_(p->value, -0.05f, p->grad);
    if (s % kEvalEvery == 0) c.acc.push_back(model.eval_accuracy(xe, ye));
  }
  return c;
}

Curve run_parallel(core::TpMode mode, int p, int depth, const char* label) {
  Curve c{label, {}, {}};
  auto ds = dataset();
  bench::World w(sim::Topology::uniform(p, 100e9),
                 bench::tp_config(mode, p, depth));
  // This section demonstrates exact serial equivalence: fp32 wire.
  w.ctx.set_comm_dtype(tensor::Dtype::kF32);
  std::vector<float> loss0(kSteps);
  std::vector<float> acc0;
  w.cluster.run([&](int g) {
    models::Classifier model(w.env(g), model_cfg());
    auto xe = ds.batch_features(50000, 512);
    auto ye = ds.batch_labels(50000, 512);
    for (int s = 0; s < kSteps; ++s) {
      auto x = ds.batch_features(s * kBatch, kBatch);
      auto y = ds.batch_labels(s * kBatch, kBatch);
      for (nn::Parameter* pp : model.parameters()) pp->grad.fill(0.0f);
      const float l = model.train_batch(x, y);
      for (nn::Parameter* pp : model.parameters())
        tensor::axpy_(pp->value, -0.05f, pp->grad);
      // evaluation is also SPMD: every rank runs the collectives
      float acc = -1.0f;
      if (s % kEvalEvery == 0) acc = model.eval_accuracy(xe, ye);
      if (g == 0) {
        loss0[static_cast<std::size_t>(s)] = l;
        if (acc >= 0.0f) acc0.push_back(acc);
      }
    }
  });
  c.loss = loss0;
  c.acc = acc0;
  return c;
}

// ---- ViT-style transformer under every mode ------------------------------------------

models::TransformerClassifier::Config vit_cfg() {
  models::TransformerClassifier::Config cfg;
  cfg.patches = 8;
  cfg.patch_dim = 16;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.ffn = 64;
  cfg.blocks = 2;
  cfg.classes = 8;
  cfg.seed = 7;
  return cfg;
}

std::vector<float> vit_serial(int steps, const data::SyntheticClassification& ds) {
  auto cfg = vit_cfg();
  models::TransformerClassifier model(cfg);
  std::vector<float> losses;
  for (int s = 0; s < steps; ++s) {
    auto x = ds.batch_features(s * kBatch, kBatch)
                 .reshape(tensor::Shape{kBatch, cfg.patches, cfg.patch_dim});
    auto y = ds.batch_labels(s * kBatch, kBatch);
    for (nn::Parameter* p : model.parameters()) p->grad.fill(0.0f);
    losses.push_back(model.train_batch(x, y));
    for (nn::Parameter* p : model.parameters())
      tensor::axpy_(p->value, -0.05f, p->grad);
  }
  return losses;
}

std::vector<float> vit_parallel(core::TpMode mode, int p, int depth, int steps,
                                const data::SyntheticClassification& ds,
                                tensor::Dtype wire = tensor::Dtype::kF32) {
  auto cfg = vit_cfg();
  bench::World w(sim::Topology::uniform(p, 100e9),
                 bench::tp_config(mode, p, depth));
  w.ctx.set_comm_dtype(wire);
  std::vector<float> losses(static_cast<std::size_t>(steps));
  w.cluster.run([&](int g) {
    models::TransformerClassifier model(w.env(g), cfg);
    for (int s = 0; s < steps; ++s) {
      auto x = ds.batch_features(s * kBatch, kBatch)
                   .reshape(tensor::Shape{kBatch, cfg.patches, cfg.patch_dim});
      auto y = ds.batch_labels(s * kBatch, kBatch);
      for (nn::Parameter* pp : model.parameters()) pp->grad.fill(0.0f);
      const float l = model.train_batch(x, y);
      for (nn::Parameter* pp : model.parameters())
        tensor::axpy_(pp->value, -0.05f, pp->grad);
      if (g == 0) losses[static_cast<std::size_t>(s)] = l;
    }
  });
  return losses;
}

void vit_transformer_section() {
  bench::header(
      "Figure 7 (transformer form): ViT-style blocks under every TP mode");
  const int steps = 12;
  data::SyntheticClassification ds(65536, 8 * 16, 8, 91);
  struct Row {
    const char* label;
    std::vector<float> losses;
  };
  std::vector<Row> rows;
  rows.push_back({"serial", vit_serial(steps, ds)});
  rows.push_back({"1D(4)", vit_parallel(core::TpMode::k1d, 4, 1, steps, ds)});
  rows.push_back({"2D(4)", vit_parallel(core::TpMode::k2d, 4, 1, steps, ds)});
  rows.push_back(
      {"2.5D(8,d=2)", vit_parallel(core::TpMode::k2p5d, 8, 2, steps, ds)});
  rows.push_back({"3D(8)", vit_parallel(core::TpMode::k3d, 8, 1, steps, ds)});

  std::printf("%-8s", "step");
  for (const auto& r : rows) std::printf("%-14s", r.label);
  std::printf("\n");
  for (int s = 0; s < steps; s += 2) {
    std::printf("%-8d", s);
    for (const auto& r : rows)
      std::printf("%-14.5f", r.losses[static_cast<std::size_t>(s)]);
    std::printf("\n");
  }
  float dev = 0.0f;
  for (const auto& r : rows)
    for (int s = 0; s < steps; ++s)
      dev = std::max(dev, std::abs(r.losses[static_cast<std::size_t>(s)] -
                                   rows[0].losses[static_cast<std::size_t>(s)]));
  std::printf("max deviation from serial: %.2e (attention + LayerNorm + MLP, "
              "all modes)\n", dev);
}

// ---- half-precision wire: convergence stays on the fp32 curve ------------------------

/// ViT-style transformer and GPT under 1D tensor parallelism with a bf16
/// wire, against the serial fp32 trajectories. The activation/gradient
/// exchanges are rounded to bf16 on the interconnect, so losses drift by
/// O(2^-8) per exchange instead of matching bit-for-bit; the pinned
/// tolerances bound that drift. Returns false when either model leaves the
/// fp32 curve.
bool halfwire_section() {
  bench::header("half wire (bf16): convergence vs the fp32 serial curve");
  constexpr float kVitTol = 5e-2f;
  constexpr float kGptTol = 5e-2f;

  // ViT-style blocks, 1D TP over 4 ranks on a bf16 wire.
  const int steps = 12;
  data::SyntheticClassification ds(65536, 8 * 16, 8, 91);
  const auto serial = vit_serial(steps, ds);
  const auto bf16 =
      vit_parallel(core::TpMode::k1d, 4, 1, steps, ds, tensor::Dtype::kBF16);
  float vit_dev = 0.0f;
  for (int s = 0; s < steps; ++s)
    vit_dev = std::max(vit_dev, std::abs(bf16[static_cast<std::size_t>(s)] -
                                         serial[static_cast<std::size_t>(s)]));

  // GPT next-token LM, 1D TP over 2 ranks on a bf16 wire.
  const int gpt_steps = 10;
  models::GptModel::Config gcfg;
  gcfg.vocab = 64;
  gcfg.seq = 8;
  gcfg.hidden = 16;
  gcfg.heads = 2;
  gcfg.ffn = 32;
  gcfg.layers = 2;
  gcfg.seed = 3;
  const std::int64_t gbatch = 4;
  data::SyntheticTokens stream(gcfg.vocab, 5);

  std::vector<float> gpt_serial;
  {
    models::GptModel m(gcfg);
    for (int s = 0; s < gpt_steps; ++s) {
      auto toks = stream.tokens(s * gbatch * gcfg.seq, gbatch * gcfg.seq);
      for (nn::Parameter* p : m.parameters()) p->grad.fill(0.0f);
      gpt_serial.push_back(m.train_batch(toks, gbatch));
      for (nn::Parameter* p : m.parameters())
        tensor::axpy_(p->value, -0.05f, p->grad);
    }
  }
  std::vector<float> gpt_bf16(static_cast<std::size_t>(gpt_steps));
  {
    bench::World w(sim::Topology::uniform(2, 100e9),
                   bench::tp_config(core::TpMode::k1d, 2));
    w.ctx.set_comm_dtype(tensor::Dtype::kBF16);
    w.cluster.run([&](int g) {
      models::GptModel m(w.env(g), models::GptModel::Mode::kTensor1D, gcfg);
      for (int s = 0; s < gpt_steps; ++s) {
        auto toks = stream.tokens(s * gbatch * gcfg.seq, gbatch * gcfg.seq);
        for (nn::Parameter* p : m.parameters()) p->grad.fill(0.0f);
        const float l = m.train_batch(toks, gbatch);
        for (nn::Parameter* p : m.parameters())
          tensor::axpy_(p->value, -0.05f, p->grad);
        if (g == 0) gpt_bf16[static_cast<std::size_t>(s)] = l;
      }
    });
  }
  float gpt_dev = 0.0f;
  for (int s = 0; s < gpt_steps; ++s)
    gpt_dev = std::max(gpt_dev,
                       std::abs(gpt_bf16[static_cast<std::size_t>(s)] -
                                gpt_serial[static_cast<std::size_t>(s)]));

  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "step", "vit fp32",
              "vit bf16", "gpt fp32", "gpt bf16");
  for (int s = 0; s < std::min(steps, gpt_steps); s += 2)
    std::printf("%-8d %-14.5f %-14.5f %-14.5f %-14.5f\n", s,
                serial[static_cast<std::size_t>(s)],
                bf16[static_cast<std::size_t>(s)],
                gpt_serial[static_cast<std::size_t>(s)],
                gpt_bf16[static_cast<std::size_t>(s)]);
  std::printf("max deviation from fp32 serial: vit %.2e (tol %.0e), "
              "gpt %.2e (tol %.0e)\n",
              static_cast<double>(vit_dev), static_cast<double>(kVitTol),
              static_cast<double>(gpt_dev), static_cast<double>(kGptTol));

  bool ok = true;
  if (!(vit_dev < kVitTol)) {
    std::printf("FAIL: ViT bf16 trajectory left the fp32 curve\n");
    ok = false;
  }
  if (!(gpt_dev < kGptTol)) {
    std::printf("FAIL: GPT bf16 trajectory left the fp32 curve\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  bench::header("Figure 7: convergence of tensor-parallel training");

  std::vector<Curve> curves;
  curves.push_back(run_serial());
  curves.push_back(run_parallel(core::TpMode::k1d, 4, 1, "1D (4 GPUs)"));
  curves.push_back(run_parallel(core::TpMode::k2d, 4, 1, "2D (4 GPUs)"));
  curves.push_back(run_parallel(core::TpMode::k2p5d, 8, 2, "2.5D (8 GPUs, d=2)"));
  curves.push_back(run_parallel(core::TpMode::k3d, 8, 1, "3D (8 GPUs)"));

  std::printf("\nper-step training loss:\n%-8s", "step");
  for (const auto& c : curves) std::printf("%-22s", c.label.c_str());
  std::printf("\n");
  for (int s = 0; s < kSteps; s += 5) {
    std::printf("%-8d", s);
    for (const auto& c : curves)
      std::printf("%-22.5f", c.loss[static_cast<std::size_t>(s)]);
    std::printf("\n");
  }

  std::printf("\nheld-out accuracy (every %d steps):\n%-8s", kEvalEvery, "eval");
  for (const auto& c : curves) std::printf("%-22s", c.label.c_str());
  std::printf("\n");
  for (std::size_t e = 0; e < curves[0].acc.size(); ++e) {
    std::printf("%-8zu", e);
    for (const auto& c : curves) std::printf("%-22.4f", c.acc[e]);
    std::printf("\n");
  }

  float max_dev = 0.0f;
  for (const auto& c : curves)
    for (int s = 0; s < kSteps; ++s)
      max_dev = std::max(max_dev,
                         std::abs(c.loss[static_cast<std::size_t>(s)] -
                                  curves[0].loss[static_cast<std::size_t>(s)]));
  std::printf("\nmax deviation of any mode from the serial curve: %.2e\n",
              max_dev);
  std::printf("(the paper's claim: all tensor-parallel curves align with data "
              "parallel training)\n");

  vit_transformer_section();
  return halfwire_section() ? 0 : 1;
}
