// Fault-tolerance costs: (1) what the numeric guard and the armed fault
// machinery add to a training step when no fault fires — the disabled path
// must stay a predictable branch — and (2) recovery time vs checkpoint
// interval: a run killed mid-training restores from its last checkpoint and
// replays the lost steps. Writes BENCH_faults.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "engine/checkpoint.hpp"
#include "engine/engine.hpp"
#include "nn/layers.hpp"
#include "optim/optimizer.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace data = ca::data;
namespace engine = ca::engine;

namespace {

constexpr int kWorld = 4;
constexpr int kBlocks = 8;
constexpr std::int64_t kHidden = 32;
constexpr std::int64_t kBatch = 4;
constexpr int kWarmup = 2, kSteps = 20;

nn::Sequential build_model() {
  nn::Sequential net;
  for (int b = 0; b < kBlocks; ++b) {
    net.add(std::make_unique<nn::Linear>("l" + std::to_string(b), kHidden,
                                         kHidden, 300u + static_cast<unsigned>(b)));
    net.add(std::make_unique<nn::Gelu>());
  }
  return net;
}

enum class GuardMode {
  kOff,    // no injector, nan_guard off: the seed-equivalent fast path
  kGuard,  // nan_guard on: per-step scan + consensus all-reduce
  kArmed,  // injector installed with an empty plan: every hook consulted
};

/// Mean wall ns per engine step over a DP training run, plus the loss
/// trajectory (all three modes must train identically when nothing fires).
struct GuardResult {
  double step_ns = 0.0;
  std::vector<float> losses;
};

GuardResult run_guard_mode(GuardMode mode) {
  core::Config cfg;
  cfg.data_parallel_size = kWorld;
  bench::World w(sim::Topology::uniform(kWorld, 100e9), cfg);
  if (mode == GuardMode::kArmed) {
    w.cluster.install_faults(sim::FaultPlan{});  // armed, nothing scheduled
  }
  const auto x = t::randn(t::Shape{kBatch, kHidden}, 11);
  std::vector<std::int64_t> labels(kBatch);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int64_t>(i % kHidden);

  GuardResult res;
  std::vector<double> step_ns(kWorld, 0.0);
  w.cluster.run([&](int g) {
    auto net = build_model();
    engine::Engine::Options opts;
    opts.nan_guard = (mode == GuardMode::kGuard);
    auto eng = engine::initialize(
        w.env(g), net,
        std::make_unique<ca::optim::Adam>(net.parameters(),
                                          ca::optim::Adam::Hyper{1e-3f}),
        opts);
    double ns = 0.0;
    std::vector<float> losses;
    for (int s = 0; s < kWarmup + kSteps; ++s) {
      eng->zero_grad();
      auto out = eng->forward(x);
      const float loss = eng->criterion(out, labels);
      eng->backward();
      const auto t0 = std::chrono::steady_clock::now();
      eng->step();
      const auto t1 = std::chrono::steady_clock::now();
      if (s >= kWarmup) {
        ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
        losses.push_back(loss);
      }
    }
    step_ns[static_cast<std::size_t>(g)] = ns / kSteps;
    if (g == 0) res.losses = std::move(losses);
  });
  for (double v : step_ns) res.step_ns = std::max(res.step_ns, v);
  return res;
}

/// One crash-and-recover cycle: train to the failure step with periodic
/// checkpoints, then restore in a fresh world and finish the schedule.
/// Returns the steps replayed (work lost to the checkpoint granularity) and
/// the wall time of the recovery phase (restore + replay + remainder).
struct RecoveryResult {
  int replayed_steps = 0;
  std::int64_t saves = 0;
  double recovery_wall_ns = 0.0;
  double recovery_sim_s = 0.0;
  bool bit_identical = false;
};

RecoveryResult run_recovery(int interval, int fail_step, int total_steps,
                            const std::vector<float>& ref_losses,
                            const std::string& path) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  data::SyntheticClassification ds(512, 8, 4, 211);
  RecoveryResult res;
  {
    bench::World w(sim::Topology::uniform(2, 100e9), cfg);
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 8, 4, 212));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<ca::optim::Adam>(net.parameters(),
                                            ca::optim::Adam::Hyper{0.01f}));
      engine::Trainer trainer(*eng);
      auto& ck = trainer.register_hook(std::make_unique<engine::CheckpointHook>(
          w.env(g), net, eng->optimizer(), path, interval));
      data::DataLoader loader(ds, 8, g, 2);
      trainer.fit(loader, 1, fail_step);  // the job dies here
      if (g == 0) res.saves = ck.saves();
    });
  }
  const std::int64_t resume_step = engine::checkpoint_step(path);
  res.replayed_steps = fail_step - static_cast<int>(resume_step);

  bench::World w(sim::Topology::uniform(2, 100e9), cfg);
  std::vector<float> rec_losses;
  const auto t0 = std::chrono::steady_clock::now();
  w.cluster.run([&](int g) {
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("m", 8, 4, 212));
    auto eng = engine::initialize(
        w.env(g), net,
        std::make_unique<ca::optim::Adam>(net.parameters(),
                                          ca::optim::Adam::Hyper{0.01f}));
    const std::int64_t step =
        engine::load_checkpoint(w.env(g), net, eng->optimizer(), path);
    eng->set_step_count(step);
    engine::Trainer trainer(*eng);
    auto& hist =
        trainer.register_hook(std::make_unique<engine::LossHistoryHook>());
    data::DataLoader loader(ds, 8, g, 2);
    trainer.fit(loader, 1, total_steps, static_cast<int>(step));
    if (g == 0) rec_losses = hist.losses();
  });
  const auto t1 = std::chrono::steady_clock::now();
  res.recovery_wall_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  res.recovery_sim_s = w.cluster.max_clock();

  // the recovered tail must be bit-identical to the uninterrupted run
  res.bit_identical = true;
  const std::size_t offset = static_cast<std::size_t>(resume_step);
  for (std::size_t i = 0; i < rec_losses.size(); ++i) {
    if (rec_losses[i] != ref_losses[offset + i]) res.bit_identical = false;
  }
  return res;
}

}  // namespace

int main() {
  bench::JsonReport report("BENCH_faults.json");
  const std::string shape = "blocks" + std::to_string(kBlocks) + "_hidden" +
                            std::to_string(kHidden) + "_world" +
                            std::to_string(kWorld);

  bench::header("numeric guard / fault machinery: step cost with no fault");
  const auto off = run_guard_mode(GuardMode::kOff);
  const auto guard = run_guard_mode(GuardMode::kGuard);
  const auto armed = run_guard_mode(GuardMode::kArmed);
  const double guard_pct = (guard.step_ns - off.step_ns) / off.step_ns * 100.0;
  const double armed_pct = (armed.step_ns - off.step_ns) / off.step_ns * 100.0;
  const bool same_losses =
      off.losses == guard.losses && off.losses == armed.losses;
  std::printf(
      "step: off %8.0f us | nan_guard %8.0f us (%+5.1f%%) | armed empty plan "
      "%8.0f us (%+5.1f%%) | losses %s\n",
      off.step_ns / 1e3, guard.step_ns / 1e3, guard_pct, armed.step_ns / 1e3,
      armed_pct, same_losses ? "identical" : "DIVERGED");
  report.add("fault_step_off", shape, off.step_ns, 0.0);
  report.add("fault_step_nan_guard", shape, guard.step_ns, 0.0);
  report.add("fault_step_armed", shape, armed.step_ns, 0.0);
  report.add("fault_guard_overhead_pct", shape, guard_pct, 0.0);

  bench::header("recovery time vs checkpoint interval (fail at step 23/24)");
  const int total_steps = 24, fail_step = 23;
  // uninterrupted reference trajectory for the bit-identity check
  std::vector<float> ref_losses;
  {
    core::Config cfg;
    cfg.data_parallel_size = 2;
    data::SyntheticClassification ds(512, 8, 4, 211);
    bench::World w(sim::Topology::uniform(2, 100e9), cfg);
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 8, 4, 212));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<ca::optim::Adam>(net.parameters(),
                                            ca::optim::Adam::Hyper{0.01f}));
      engine::Trainer trainer(*eng);
      auto& hist =
          trainer.register_hook(std::make_unique<engine::LossHistoryHook>());
      data::DataLoader loader(ds, 8, g, 2);
      trainer.fit(loader, 1, total_steps);
      if (g == 0) ref_losses = hist.losses();
    });
  }

  bool all_identical = true;
  for (int interval : {1, 2, 4, 8}) {
    const std::string path =
        "bench_faults_ckpt_k" + std::to_string(interval) + ".bin";
    const auto r =
        run_recovery(interval, fail_step, total_steps, ref_losses, path);
    all_identical = all_identical && r.bit_identical;
    std::printf(
        "interval %d: %2lld saves | %2d steps replayed | recovery %7.0f us "
        "wall, %.4f sim s | tail %s\n",
        interval, static_cast<long long>(r.saves), r.replayed_steps,
        r.recovery_wall_ns / 1e3, r.recovery_sim_s,
        r.bit_identical ? "bit-identical" : "DIVERGED");
    const std::string tag = "_k" + std::to_string(interval);
    report.add("fault_recovery_wall_ns" + tag, shape, r.recovery_wall_ns, 0.0);
    report.add("fault_recovery_replayed_steps" + tag, shape,
               static_cast<double>(r.replayed_steps), 0.0);
    std::remove(path.c_str());
  }
  report.write();

  if (!same_losses || !all_identical) {
    std::fprintf(stderr, "FAIL: fault-tolerance paths changed the numerics\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
