// Figure 14: throughput of GPT-2 10B training with ZeRO-3 sharding and
// offloading on System II, batch size 4 per GPU, scaling 1 -> 8 GPUs:
// Colossal-AI's dynamic tensor placement vs the DeepSpeed static-offload
// baseline. Plus the OPT-13B batch-32 data point and a Figure 6 ablation
// (fp16 parameter/gradient storage reuse on/off).

#include "bench_common.hpp"
#include "models/configs.hpp"
#include "zero/offload.hpp"

using namespace ca;

namespace {

struct Result {
  double step_time = 0.0;
  std::int64_t device_bytes = 0;
};

Result run(const zero::OffloadPolicy& policy, int gpus,
           const models::ModelConfig& model, std::int64_t batch) {
  bench::World w(gpus == 8 ? sim::Topology::system_ii()
                           : sim::Topology::uniform(gpus, 15e9, sim::a100_80gb()),
                 [&] {
                   core::Config cfg;
                   cfg.data_parallel_size = gpus;
                   return cfg;
                 }());
  zero::OffloadWorkload work;
  work.layers = model.layers;
  work.hidden = model.hidden;
  work.batch_per_gpu = batch;
  work.seq = model.seq;

  Result res;
  std::vector<std::int64_t> dev(static_cast<std::size_t>(gpus), 0);
  w.cluster.run([&](int g) {
    zero::SimOffloadTrainer trainer(w.env(g), work, policy);
    trainer.train_step();
    dev[static_cast<std::size_t>(g)] = trainer.device_param_bytes();
  });
  res.step_time = w.cluster.max_clock();
  res.device_bytes = dev[0];
  return res;
}

/// Dynamic placement but with the Figure 6 storage reuse disabled: gradients
/// need their own fp16 buffers and stream over PCIe like the baseline.
class DynamicNoReuse : public zero::DynamicOffloadPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "dynamic-no-reuse"; }
  [[nodiscard]] bool reuse_fp16_storage() const override { return false; }
};

}  // namespace

int main() {
  const zero::StaticOffloadPolicy deepspeed;
  const zero::DynamicOffloadPolicy colossal;
  const auto gpt = models::gpt2_10b();

  bench::header("Figure 14: GPT-2 10B throughput, batch 4/GPU, System II "
                "(samples/sec)");
  std::printf("%-7s %-22s %-22s %-10s\n", "GPUs", "Colossal-AI (dynamic)",
              "DeepSpeed (static)", "speedup");
  for (int gpus : {1, 2, 4, 8}) {
    const auto rs = run(deepspeed, gpus, gpt, 4);
    const auto rd = run(colossal, gpus, gpt, 4);
    const double thr_d = 4.0 * gpus / rd.step_time;
    const double thr_s = 4.0 * gpus / rs.step_time;
    std::printf("%-7d %-22.2f %-22.2f %.2fx\n", gpus, thr_d, thr_s,
                thr_d / thr_s);
  }

  bench::header("OPT-13B, batch 32/GPU, 8 GPUs");
  const auto opt = models::opt_13b();
  const auto rs = run(deepspeed, 8, opt, 32);
  const auto rd = run(colossal, 8, opt, 32);
  std::printf("Colossal-AI %.2f samples/s vs DeepSpeed %.2f samples/s -> "
              "%.2fx (paper: 1.33x)\n",
              32.0 * 8 / rd.step_time, 32.0 * 8 / rs.step_time,
              rs.step_time / rd.step_time);

  bench::header("Figure 6 ablation: fp16 parameter/gradient storage reuse");
  const DynamicNoReuse no_reuse;
  for (int gpus : {1, 8}) {
    const auto with_reuse = run(colossal, gpus, gpt, 4);
    const auto without = run(no_reuse, gpus, gpt, 4);
    std::printf("%d GPU(s): step %.3fs with reuse vs %.3fs without "
                "(%.1f%% faster; gradients reuse the fp16 parameter chunks)\n",
                gpus, with_reuse.step_time, without.step_time,
                100.0 * (without.step_time / with_reuse.step_time - 1.0));
  }
  return 0;
}
