// Figure 12: memory efficiency of sequence parallelism over 1D tensor
// parallelism on BERT-Base / System III (A100-40GB). (a) maximum batch size
// at sequence length 512; (b) maximum sequence length at batch 64. 1D runs
// at 4/6/12 GPUs (its head-divisibility restriction), SP at 4/8/12.

#include "bench_common.hpp"
#include "sp/memory_model.hpp"

using namespace ca;

int main() {
  const std::int64_t cap = 40LL << 30;

  bench::header("Figure 12a: max batch size, seq=512 (BERT-Base, A100-40GB)");
  std::printf("%-8s %-22s %-22s\n", "GPUs", "Sequence Parallelism",
              "1D Tensor Parallelism");
  // 1D requires #heads (12) divisible by the parallel size -> 4, 6, 12;
  // SP has no such restriction -> 4, 8, 12.
  const int sp_gpus[] = {4, 8, 12};
  const int td_gpus[] = {4, 6, 12};
  for (int i = 0; i < 3; ++i) {
    sp::BertShape s;
    s.seq = 512;
    const auto b_sp = sp::max_batch(sp::bert_peak_sp, s, sp_gpus[i], cap);
    const auto b_1d = sp::max_batch(sp::bert_peak_1d, s, td_gpus[i], cap);
    std::printf("%d/%-6d %-22lld %-22lld\n", sp_gpus[i], td_gpus[i],
                static_cast<long long>(b_sp), static_cast<long long>(b_1d));
  }
  {
    sp::BertShape s;
    s.seq = 512;
    const double ratio =
        static_cast<double>(sp::max_batch(sp::bert_peak_sp, s, 12, cap)) /
        static_cast<double>(sp::max_batch(sp::bert_peak_1d, s, 12, cap));
    std::printf("max batch of SP at 12 GPUs is %.2fx that of 1D (paper: "
                "4.44x)\n", ratio);
  }

  bench::header("Figure 12b: max sequence length, batch=64");
  std::printf("%-8s %-22s %-22s\n", "GPUs", "Sequence Parallelism",
              "1D Tensor Parallelism");
  for (int i = 0; i < 3; ++i) {
    sp::BertShape s;
    s.batch = 64;
    const auto s_sp = sp::max_seq(sp::bert_peak_sp, s, sp_gpus[i], cap);
    const auto s_1d = sp::max_seq(sp::bert_peak_1d, s, td_gpus[i], cap);
    std::printf("%d/%-6d %-22lld %-22lld\n", sp_gpus[i], td_gpus[i],
                static_cast<long long>(s_sp), static_cast<long long>(s_1d));
  }
  {
    sp::BertShape s;
    s.batch = 64;
    const double ratio =
        static_cast<double>(sp::max_seq(sp::bert_peak_sp, s, 12, cap)) /
        static_cast<double>(sp::max_seq(sp::bert_peak_1d, s, 12, cap));
    std::printf("max seq of SP at 12 GPUs is %.2fx that of 1D (paper: 1.18x "
                "larger; quadratic attention caps the gain — with "
                "linear-complexity attention SP scales linearly in p)\n",
                ratio);
  }
  return 0;
}
