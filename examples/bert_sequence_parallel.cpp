// Sequence parallelism on a BERT-style model: split a long sequence over 4
// ranks with Ring Self-Attention, show arithmetic equivalence with the
// serial model, then print the Figure 12-style max-batch/max-seq advantage.
//
//   build/examples/bert_sequence_parallel

#include <cstdio>

#include "collective/backend.hpp"
#include "core/context.hpp"
#include "models/vit.hpp"
#include "sp/memory_model.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"

using namespace ca;

int main() {
  // a long-sequence encoder: 32 tokens over 4 ranks = 8 tokens each
  models::VitClassifier::Config mc;
  mc.patches = 32;  // sequence length
  mc.patch_dim = 16;
  mc.hidden = 32;
  mc.heads = 4;
  mc.ffn = 64;
  mc.layers = 2;
  mc.classes = 4;
  mc.seed = 5;

  auto x = tensor::randn(tensor::Shape{4, mc.patches, mc.patch_dim}, 6);
  std::vector<std::int64_t> labels{0, 1, 2, 3};

  models::VitClassifier serial(mc);
  const float serial_loss = serial.train_batch(x, labels);

  core::Config config;
  config.sequence_parallel_size = 4;
  sim::Cluster cluster(sim::Topology::system_iii(1));  // one 4-GPU node
  collective::Backend backend(cluster);
  core::ParallelContext ctx(backend, config);

  std::vector<float> sp_loss(4);
  cluster.run([&](int rank) {
    tp::Env env{&ctx, rank};
    models::VitClassifier model(env, models::VitClassifier::Mode::kSequence, mc);
    sp_loss[static_cast<std::size_t>(rank)] = model.train_batch(x, labels);
  });

  std::printf("Ring Self-Attention encoder, seq %lld over 4 ranks:\n",
              static_cast<long long>(mc.patches));
  std::printf("  serial loss %.6f | sequence-parallel loss %.6f (diff %.2e)\n",
              serial_loss, sp_loss[0],
              std::abs(serial_loss - sp_loss[0]));

  // ---- why sequence parallelism exists: the memory wall (Figure 12) ------------
  std::printf("\nBERT-Base on A100-40GB, what fits before OOM:\n");
  std::printf("  %-6s %-22s %-22s\n", "GPUs", "max batch (seq=512)",
              "max seq (batch=64)");
  for (int p : {4, 8, 12}) {
    sp::BertShape bs;
    bs.seq = 512;
    const auto sp_batch = sp::max_batch(sp::bert_peak_sp, bs, p, 40LL << 30);
    const auto td_batch = sp::max_batch(sp::bert_peak_1d, bs, p, 40LL << 30);
    sp::BertShape ss;
    ss.batch = 64;
    const auto sp_seq = sp::max_seq(sp::bert_peak_sp, ss, p, 40LL << 30);
    const auto td_seq = sp::max_seq(sp::bert_peak_1d, ss, p, 40LL << 30);
    std::printf("  %-6d SP %5lld vs 1D %5lld    SP %6lld vs 1D %6lld\n", p,
                static_cast<long long>(sp_batch), static_cast<long long>(td_batch),
                static_cast<long long>(sp_seq), static_cast<long long>(td_seq));
  }
  return 0;
}
