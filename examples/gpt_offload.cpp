// Heterogeneous training of a 10B-parameter GPT-2 on one simulated DGX-class
// node: Colossal-AI's dynamic tensor placement + chunk manager + hybrid Adam
// against the DeepSpeed-style static offload baseline (the Figure 14 setup).
//
//   build/examples/gpt_offload

#include <cstdio>

#include "collective/backend.hpp"
#include "core/context.hpp"
#include "models/configs.hpp"
#include "sim/cluster.hpp"
#include "zero/offload.hpp"

using namespace ca;

namespace {

double step_time(const zero::OffloadPolicy& policy, int gpus,
                 const models::ModelConfig& model, std::int64_t batch,
                 std::int64_t* device_bytes = nullptr) {
  sim::Cluster cluster(gpus == 8
                           ? sim::Topology::system_ii()
                           : sim::Topology::uniform(gpus, 15e9, sim::a100_80gb()));
  collective::Backend backend(cluster);
  core::Config cfg;
  cfg.data_parallel_size = gpus;
  core::ParallelContext ctx(backend, cfg);

  zero::OffloadWorkload w;
  w.layers = model.layers;
  w.hidden = model.hidden;
  w.batch_per_gpu = batch;
  w.seq = model.seq;

  std::vector<std::int64_t> dev(static_cast<std::size_t>(gpus), 0);
  cluster.run([&](int rank) {
    zero::SimOffloadTrainer trainer(tp::Env{&ctx, rank}, w, policy);
    trainer.train_step();
    dev[static_cast<std::size_t>(rank)] = trainer.device_param_bytes();
  });
  if (device_bytes != nullptr) *device_bytes = dev[0];
  return cluster.max_clock();
}

}  // namespace

int main() {
  const zero::StaticOffloadPolicy deepspeed;
  const zero::DynamicOffloadPolicy colossal;

  auto gpt = models::gpt2_10b();
  std::printf("GPT-2 %.1fB, batch 4 per GPU, ZeRO-3 + offloading:\n",
              static_cast<double>(gpt.params()) / 1e9);
  std::printf("  %-5s %-26s %-26s %-8s\n", "GPUs", "DeepSpeed-static (s/step)",
              "Colossal-dynamic (s/step)", "speedup");
  for (int gpus : {1, 2, 4, 8}) {
    std::int64_t dev_bytes = 0;
    const double ts = step_time(deepspeed, gpus, gpt, 4);
    const double td = step_time(colossal, gpus, gpt, 4, &dev_bytes);
    std::printf("  %-5d %-26.3f %-26.3f %.2fx   (%.1f GB of fp16 shards kept "
                "on GPU)\n",
                gpus, ts, td, ts / td, static_cast<double>(dev_bytes) / 1e9);
  }

  auto opt = models::opt_13b();
  std::printf("\nOPT-13B, batch 32 per GPU, 8 GPUs:\n");
  const double ts = step_time(deepspeed, 8, opt, 32);
  const double td = step_time(colossal, 8, opt, 32);
  std::printf("  static %.3f s/step, dynamic %.3f s/step -> %.2fx speedup\n",
              ts, td, ts / td);
  std::printf("  (the paper reports 1.33x here: with the larger batch both "
              "systems fill the GPU)\n");
  return 0;
}
