// Train a small Vision-Transformer classifier under Megatron-style 1D tensor
// parallelism and verify against the serial model — the functional analogue
// of the paper's ViT experiments (Sections 5.2).
//
//   build/examples/vit_tensor_parallel

#include <cstdio>

#include "collective/backend.hpp"
#include "core/context.hpp"
#include "data/synthetic.hpp"
#include "models/vit.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"

using namespace ca;

namespace {

/// Pseudo-images: one feature vector per patch, drawn from class clusters.
tensor::Tensor make_patches(const data::SyntheticClassification& ds,
                            std::int64_t start, std::int64_t batch,
                            std::int64_t patches, std::int64_t patch_dim) {
  auto flat = ds.batch_features(start, batch);  // (batch, patches*patch_dim)
  return flat.reshape(tensor::Shape{batch, patches, patch_dim});
}

}  // namespace

int main() {
  models::VitClassifier::Config vc;
  vc.patches = 16;
  vc.patch_dim = 12;
  vc.hidden = 48;
  vc.heads = 4;
  vc.ffn = 96;
  vc.layers = 2;
  vc.classes = 8;
  vc.seed = 11;

  data::SyntheticClassification ds(8192, vc.patches * vc.patch_dim, vc.classes,
                                   21);
  const std::int64_t batch = 16;
  const int steps = 25;
  const float lr = 0.03f;

  // ---- serial reference -------------------------------------------------------
  models::VitClassifier serial(vc);
  float serial_last = 0.0f;
  for (int s = 0; s < steps; ++s) {
    auto x = make_patches(ds, s * batch, batch, vc.patches, vc.patch_dim);
    auto y = ds.batch_labels(s * batch, batch);
    for (nn::Parameter* p : serial.parameters()) p->grad.fill(0.0f);
    serial_last = serial.train_batch(x, y);
    for (nn::Parameter* p : serial.parameters())
      tensor::axpy_(p->value, -lr, p->grad);
  }

  // ---- the same model, 1D tensor parallel over 4 simulated A100s ---------------
  core::Config config;
  config.tensor_parallel_size = 4;
  config.tensor_mode = core::TpMode::k1d;
  sim::Cluster cluster(sim::Topology::system_i());
  // System I has 8 GPUs; use a 4-GPU slice
  sim::Cluster cluster4(sim::Topology::uniform(4, 184e9));
  collective::Backend backend(cluster4);
  core::ParallelContext ctx(backend, config);

  std::vector<float> tp_last(4);
  cluster4.run([&](int rank) {
    tp::Env env{&ctx, rank};
    models::VitClassifier model(env, models::VitClassifier::Mode::kTensor1D, vc);
    float loss = 0.0f;
    for (int s = 0; s < steps; ++s) {
      auto x = make_patches(ds, s * batch, batch, vc.patches, vc.patch_dim);
      auto y = ds.batch_labels(s * batch, batch);
      for (nn::Parameter* p : model.parameters()) p->grad.fill(0.0f);
      loss = model.train_batch(x, y);
      for (nn::Parameter* p : model.parameters())
        tensor::axpy_(p->value, -lr, p->grad);
    }
    tp_last[static_cast<std::size_t>(rank)] = loss;
  });

  std::printf("ViT training, %d steps:\n", steps);
  std::printf("  serial          final loss %.5f\n", serial_last);
  std::printf("  1D TP (4 GPUs)  final loss %.5f\n", tp_last[0]);
  std::printf("  divergence: %.2e  (arithmetic equivalence, Figure 7)\n",
              std::abs(serial_last - tp_last[0]));
  std::printf("  simulated time/step %.3f ms, traffic %.1f MB\n",
              1e3 * cluster4.max_clock() / steps,
              static_cast<double>(cluster4.total_bytes_sent()) / 1e6);
  return 0;
}
