// The unified-system showcase: data + tensor + pipeline parallelism freely
// combined in one training run (the paper's core claim), configured from the
// textual Listing-1 schema, and verified against the serial model on the
// same batch.
//
//   build/examples/hybrid_parallel

#include <cstdio>

#include "collective/backend.hpp"
#include "core/config_parser.hpp"
#include "core/context.hpp"
#include "nn/layers.hpp"
#include "pp/pipeline.hpp"
#include "sim/cluster.hpp"
#include "tp/linear1d.hpp"

using namespace ca;

int main() {
  // one line of configuration: 2-way data x 2-stage pipeline x 2-way tensor,
  // driving the zero-bubble pipeline schedule (CA_PP_SCHEDULE still wins)
  const auto config = core::parse_config(
      "data=2 pipeline=2 tensor.size=2 tensor.mode=1d pp.schedule=zero_bubble");
  std::printf("hybrid parallel training on %d simulated GPUs "
              "(data=%d x pipeline=%d x tensor=%d)\n",
              config.world_size(), config.data_parallel_size,
              config.pipeline_parallel_size, config.tensor_parallel_size);

  sim::Cluster cluster(sim::Topology::system_i());
  collective::Backend backend(cluster);
  core::ParallelContext ctx(backend, config);

  const std::int64_t h = 16, f = 32;
  const std::int64_t micro_rows = 4, micros = 4;
  const std::int64_t rows = micro_rows * micros * config.data_parallel_size;
  auto x = tensor::randn(tensor::Shape{rows, h}, 1);
  auto target = tensor::randn(tensor::Shape{rows, h}, 2);
  const float norm = static_cast<float>(rows);

  // serial reference
  nn::Mlp s0("stage0", h, f, 10), s1("stage1", h, f, 11);
  float serial_loss = 0.0f;
  for (std::int64_t m = 0; m < rows / micro_rows; ++m) {
    auto xm = tensor::narrow(x, 0, m * micro_rows, micro_rows);
    auto tm = tensor::narrow(target, 0, m * micro_rows, micro_rows);
    auto y = s1.forward(s0.forward(xm));
    auto dy = tensor::sub(y, tm);
    serial_loss += 0.5f * tensor::sum(tensor::mul(dy, dy)) / norm;
    tensor::scale_(dy, 1.0f / norm);
    s0.backward(s1.backward(dy));
  }

  std::vector<float> losses(static_cast<std::size_t>(config.world_size()), 0.0f);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    const int dp = ctx.data_rank(g);
    const int stage = ctx.pipeline_rank(g);

    tp::Mlp1D module(env, stage == 0 ? "stage0" : "stage1", h, f,
                     stage == 0 ? 10 : 11);

    std::vector<tensor::Tensor> inputs;
    const std::int64_t base = dp * micro_rows * micros;
    for (std::int64_t m = 0; m < micros; ++m)
      inputs.push_back(tensor::narrow(x, 0, base + m * micro_rows, micro_rows));

    // schedule resolved from the knobs above (config, or CA_PP_SCHEDULE)
    pp::Pipeline pipe(env, module, tensor::Shape{micro_rows, h});
    const float loss = pipe.train_step(
        static_cast<int>(micros), inputs,
        [&](const tensor::Tensor& y, tensor::Tensor& dy, int m) {
          auto tm = tensor::narrow(target, 0, base + m * micro_rows, micro_rows);
          dy = tensor::sub(y, tm);
          const float l = 0.5f * tensor::sum(tensor::mul(dy, dy)) / norm;
          tensor::scale_(dy, 1.0f / norm);
          return l;
        });

    // data-parallel gradient sync closes the loop
    for (nn::Parameter* p : module.parameters())
      ctx.data_group(g).all_reduce(g, p->grad.data());

    losses[static_cast<std::size_t>(g)] = loss * micros;
  });

  float total = 0.0f;
  for (int g = 0; g < config.world_size(); ++g)
    if (ctx.is_last_stage(g) && ctx.tensor_rank(g) == 0)
      total += losses[static_cast<std::size_t>(g)];

  std::printf("  serial loss  %.6f\n", serial_loss);
  std::printf("  hybrid loss  %.6f  (sum over data replicas; diff %.2e)\n",
              total, std::abs(total - serial_loss));
  std::printf("  simulated step time %.3f ms, interconnect traffic %.1f MB\n",
              1e3 * cluster.max_clock(),
              static_cast<double>(cluster.total_bytes_sent()) / 1e6);
  std::printf("  (8 ranks ran 3 parallelism modes simultaneously; gradients "
              "match the serial model)\n");
  return 0;
}
