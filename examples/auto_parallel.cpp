// Section 3.3 walk-through: automatic parallelization on a 4x2 device mesh.
// Shows the sharding-spec conversion search (the greedy algorithm that
// replaces Alpa's hardcoded table) and the strategy planner choosing
// per-layer parallelization + activation checkpointing for an MLP chain.
//
//   build/examples/auto_parallel

#include <cstdio>

#include "autop/planner.hpp"

using namespace ca;
namespace ap = ca::autop;

int main() {
  const ap::Mesh mesh{4, 2, 100e9, 25e9, 5e-6};
  std::printf("device mesh: %dx%d (axis0 %g GB/s, axis1 %g GB/s)\n\n",
              mesh.dim0, mesh.dim1, mesh.bw0 / 1e9, mesh.bw1 / 1e9);

  // ---- 1. redistributing a sharded tensor ---------------------------------------
  std::printf("sharding conversions for a 64 MB tensor:\n");
  struct Case {
    const char* what;
    ap::ShardingSpec from, to;
  };
  const Case cases[] = {
      {"row-shard -> col-shard",
       ap::ShardingSpec({ap::DimShard::kS0, ap::DimShard::kR}),
       ap::ShardingSpec({ap::DimShard::kR, ap::DimShard::kS0})},
      {"transpose the mesh axes",
       ap::ShardingSpec({ap::DimShard::kS0, ap::DimShard::kS1}),
       ap::ShardingSpec({ap::DimShard::kS1, ap::DimShard::kS0})},
      {"replicate everything",
       ap::ShardingSpec({ap::DimShard::kS01, ap::DimShard::kR}),
       ap::ShardingSpec({ap::DimShard::kR, ap::DimShard::kR})},
  };
  for (const auto& c : cases) {
    const auto greedy = ap::plan_greedy(c.from, c.to, mesh, 64 << 20);
    const auto optimal = ap::plan_optimal(c.from, c.to, mesh, 64 << 20);
    std::printf("  %-26s %s -> %s: ", c.what, c.from.str().c_str(),
                c.to.str().c_str());
    for (const auto& s : greedy.steps) std::printf("%s ", s.str().c_str());
    std::printf(" [greedy %.2f ms, optimal %.2f ms]\n",
                1e3 * greedy.total_cost, 1e3 * optimal.total_cost);
  }

  // ---- 2. planning a model ------------------------------------------------------
  std::printf("\nstrategy search over a 4-layer MLP chain "
              "(rows=16384, hidden=8192):\n");
  ap::Planner planner(mesh, 100e12);
  std::vector<ap::LinearNode> graph;
  for (int i = 0; i < 4; ++i)
    graph.push_back({"layer" + std::to_string(i), 16384, 8192, 8192});

  const auto loose = planner.plan(graph, std::int64_t{512} << 30);
  std::printf("  unconstrained:  ");
  for (const auto& n : loose.nodes) std::printf("%s ", n.strategy.c_str());
  std::printf("\n    step %.2f ms, peak %lld MiB\n", 1e3 * loose.step_seconds,
              static_cast<long long>(loose.peak_bytes >> 20));

  const auto tight = planner.plan(graph, loose.peak_bytes * 9 / 10);
  std::printf("  90%% memory cap: ");
  for (const auto& n : tight.nodes)
    std::printf("%s%s ", n.strategy.c_str(), n.checkpointed ? "*" : "");
  std::printf("\n    step %.2f ms, peak %lld MiB  (* = checkpointed: "
              "recompute traded for memory)\n",
              1e3 * tight.step_seconds,
              static_cast<long long>(tight.peak_bytes >> 20));
  return 0;
}
