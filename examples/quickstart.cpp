// Quickstart: the C++ mirror of the paper's Listing 1.
//
// A user writes single-node-style training code; the parallel configuration
// is data, and colossalai-cpp injects the distributed execution. Here: 1D
// tensor parallelism with parallel size 4 on a simulated 4-GPU NVLink box.
//
//   build/examples/quickstart

#include <cstdio>

#include "collective/backend.hpp"
#include "core/context.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "models/classifier.hpp"
#include "nn/layers.hpp"
#include "optim/optimizer.hpp"
#include "sim/cluster.hpp"

using namespace ca;

int main() {
  // ---- specify 1D tensor parallelism with parallel size 4 (Listing 1) ----
  core::Config config;
  config.tensor_parallel_size = 4;
  config.tensor_mode = core::TpMode::k1d;

  // ---- launch the (simulated) distributed environment ----
  sim::Cluster cluster(sim::Topology::uniform(config.world_size(), 184e9));
  collective::Backend backend(cluster);
  core::ParallelContext ctx(backend, config);

  // ---- define training components ----
  data::SyntheticClassification dataset(4096, 16, 8, /*seed=*/7);
  const std::int64_t batch = 32;
  const int steps = 40;

  std::printf("colossalai-cpp quickstart: %d ranks, mode=%s\n",
              config.world_size(), core::to_string(config.tensor_mode).c_str());

  std::vector<float> first_loss(4), last_loss(4), accuracy(4);
  cluster.run([&](int rank) {
    tp::Env env{&ctx, rank};

    // a small MLP classifier whose blocks are 1D tensor-parallel
    models::Classifier model(env, {16, 64, 8, 2, /*seed=*/1});

    // initialize with Colossal-AI (engine wraps model/optimizer/criterion)
    for (int s = 0; s < steps; ++s) {
      auto x = dataset.batch_features(s * batch, batch);
      auto labels = dataset.batch_labels(s * batch, batch);

      for (nn::Parameter* p : model.parameters()) p->grad.fill(0.0f);
      const float loss = model.train_batch(x, labels);
      for (nn::Parameter* p : model.parameters())
        tensor::axpy_(p->value, -0.05f, p->grad);

      if (s == 0) first_loss[static_cast<std::size_t>(rank)] = loss;
      last_loss[static_cast<std::size_t>(rank)] = loss;
    }
    auto xe = dataset.batch_features(0, 256);
    auto ye = dataset.batch_labels(0, 256);
    accuracy[static_cast<std::size_t>(rank)] = model.eval_accuracy(xe, ye);
  });

  std::printf("  loss: %.4f -> %.4f   accuracy: %.1f%%\n", first_loss[0],
              last_loss[0], 100.0f * accuracy[0]);
  std::printf("  simulated step time: %.3f ms, interconnect traffic: %.1f MB\n",
              1e3 * cluster.max_clock() / steps,
              static_cast<double>(cluster.total_bytes_sent()) / 1e6);
  std::printf("  (all %d ranks report identical losses: %s)\n",
              config.world_size(),
              last_loss[0] == last_loss[3] ? "yes" : "NO - BUG");
  return 0;
}
