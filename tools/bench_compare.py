#!/usr/bin/env python3
"""Regression gate over BENCH_*.json reports.

Compares a freshly produced set of bench reports against the committed
baselines and fails (exit 1) when any deterministic row moved by more than
--tolerance (relative). Rows whose op starts with "wall" or ends with "_pct"
are machine wall-time measurements and are reported but never gated; the
remaining rows are simulated/deterministic quantities (simulated seconds,
calibration errors, straggler counts) that must be reproducible anywhere.

Usage:
  tools/bench_compare.py --baseline-dir baselines --fresh-dir . \
      --files BENCH_metrics.json BENCH_trace.json
"""

import argparse
import json
import os
import sys

EPS = 1e-12


def is_machine_row(op: str) -> bool:
    return op.startswith("wall") or op.endswith("_pct")


def load_rows(path: str) -> dict:
    """Map (op, shape) -> ns_per_iter. Duplicate keys must agree."""
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        key = (row["op"], row["shape"])
        value = float(row["ns_per_iter"])
        if key in out and abs(out[key] - value) > EPS:
            raise SystemExit(f"{path}: duplicate row {key} with differing values")
        out[key] = value
    return out


def compare_file(name: str, baseline_dir: str, fresh_dir: str,
                 tolerance: float) -> int:
    base_path = os.path.join(baseline_dir, name)
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(base_path):
        print(f"  {name}: no committed baseline, skipping")
        return 0
    if not os.path.exists(fresh_path):
        print(f"  {name}: FRESH REPORT MISSING (bench did not run?)")
        return 1
    base = load_rows(base_path)
    fresh = load_rows(fresh_path)

    failures = 0
    for key in sorted(base):
        op, shape = key
        if key not in fresh:
            print(f"  {op} [{shape}]: ROW DISAPPEARED")
            failures += 1
            continue
        b, f = base[key], fresh[key]
        if is_machine_row(op):
            print(f"  {op} [{shape}]: {b:.1f} -> {f:.1f} (wall-time, not gated)")
            continue
        if abs(b) < EPS:
            # A zero baseline (e.g. straggler_false_alarms) must stay zero.
            ok = abs(f) < EPS
            delta_txt = "0 -> 0" if ok else f"0 -> {f:.6g}"
        else:
            rel = (f - b) / b
            ok = abs(rel) <= tolerance
            delta_txt = f"{b:.6g} -> {f:.6g} ({rel:+.1%})"
        print(f"  {op} [{shape}]: {delta_txt}{'' if ok else '  REGRESSION'}")
        if not ok:
            failures += 1
    for key in sorted(set(fresh) - set(base)):
        print(f"  {key[0]} [{key[1]}]: new row (no baseline), skipping")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--fresh-dir", required=True)
    ap.add_argument("--files", nargs="+", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max |relative delta| for deterministic rows")
    args = ap.parse_args()

    total = 0
    for name in args.files:
        print(f"{name}:")
        total += compare_file(name, args.baseline_dir, args.fresh_dir,
                              args.tolerance)
    if total:
        print(f"\n{total} row(s) regressed beyond {args.tolerance:.0%}")
        return 1
    print("\nall deterministic rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
