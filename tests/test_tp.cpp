// Exactness tests for every tensor-parallel mode: each parallel layer, run
// SPMD over a simulated cluster, must reproduce the serial nn:: reference
// built from the same seeds — the property behind the paper's Figure 7
// ("testing accuracy curves of multi-dimensional tensor parallelism well
// align with data parallel training").
//
// Also: Table 1 communication-volume checks against measured interconnect
// bytes, and cross-validation of the analytic memory model (Figure 8)
// against measured MemoryTracker peaks.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "tp/comm_volume.hpp"
#include "tp/linear1d.hpp"
#include "tp/linear2d.hpp"
#include "tp/linear2p5d.hpp"
#include "tp/linear3d.hpp"
#include "tp/memory_model.hpp"
#include "tp/sim_transformer.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace tp = ca::tp;
namespace core = ca::core;
namespace col = ca::collective;
namespace sim = ca::sim;

namespace {

struct TpWorld {
  TpWorld(core::Config cfg)
      : cluster(sim::Topology::uniform(cfg.world_size(), 100e9)),
        backend(cluster),
        ctx(backend, cfg) {
    // This suite asserts exact serial equivalence; pin the wire to fp32 so
    // it stays meaningful under the CA_COMM_DTYPE=bf16 CI sweep.
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }

  tp::Env env(int grank) { return tp::Env{&ctx, grank}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

core::Config tp_config(core::TpMode mode, int size, int depth = 1) {
  core::Config cfg;
  cfg.tensor_parallel_size = size;
  cfg.tensor_mode = mode;
  cfg.tensor_depth = depth;
  return cfg;
}

}  // namespace

// ---- 1D -----------------------------------------------------------------------

TEST(Tp1d, ColLinearMatchesSerial) {
  const int p = 4;
  const std::int64_t in = 8, out = 12, rows = 6;
  TpWorld w(tp_config(core::TpMode::k1d, p));

  nn::Linear serial("l", in, out, 42);
  auto x = t::randn(t::Shape{rows, in}, 7);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, out}, 8);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> dx(p), y(p), dw(p);
  w.cluster.run([&](int r) {
    tp::Linear1DCol lin(w.env(r), "l", in, out, 42, /*gather_output=*/true);
    y[r] = lin.forward(x);
    dx[r] = lin.backward(dy);
    dw[r] = lin.weight().grad.clone();
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(t::allclose(y[r], y_ref, 1e-4f)) << "rank " << r;
    EXPECT_TRUE(t::allclose(dx[r], dx_ref, 1e-4f)) << "rank " << r;
    EXPECT_TRUE(t::allclose(dw[r], t::chunk(serial.weight().grad, 1, p, r), 1e-4f));
  }
}

TEST(Tp1d, RowLinearMatchesSerial) {
  const int p = 4;
  const std::int64_t in = 8, out = 6, rows = 5;
  TpWorld w(tp_config(core::TpMode::k1d, p));

  nn::Linear serial("l", in, out, 13);
  auto x = t::randn(t::Shape{rows, in}, 14);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, out}, 15);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dw(p);
  w.cluster.run([&](int r) {
    tp::Linear1DRow lin(w.env(r), "l", in, out, 13);
    auto x_local = t::chunk(x, -1, p, r);
    y[r] = lin.forward(x_local);
    dx[r] = lin.backward(dy);
    dw[r] = lin.weight().grad.clone();
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(t::allclose(y[r], y_ref, 1e-4f)) << "rank " << r;
    EXPECT_TRUE(t::allclose(dx[r], t::chunk(dx_ref, -1, p, r), 1e-4f));
    EXPECT_TRUE(t::allclose(dw[r], t::chunk(serial.weight().grad, 0, p, r), 1e-4f));
  }
}

TEST(Tp1d, MlpMatchesSerial) {
  const int p = 2;
  const std::int64_t h = 8, f = 16, rows = 4;
  TpWorld w(tp_config(core::TpMode::k1d, p));

  nn::Mlp serial("m", h, f, 21);
  auto x = t::randn(t::Shape{rows, h}, 22);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, h}, 23);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int r) {
    tp::Mlp1D mlp(w.env(r), "m", h, f, 21);
    y[r] = mlp.forward(x);
    dx[r] = mlp.backward(dy);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(t::allclose(y[r], y_ref, 1e-4f));
    EXPECT_TRUE(t::allclose(dx[r], dx_ref, 1e-4f));
  }
}

TEST(Tp1d, AttentionMatchesSerial) {
  const int p = 2;
  const std::int64_t b = 2, s = 4, h = 8, heads = 4;
  TpWorld w(tp_config(core::TpMode::k1d, p));

  nn::MultiHeadAttention serial("a", h, heads, 31);
  auto x = t::randn(t::Shape{b, s, h}, 32);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 33);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int r) {
    tp::Attention1D attn(w.env(r), "a", h, heads, 31);
    y[r] = attn.forward(x);
    dx[r] = attn.backward(dy);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(t::allclose(y[r], y_ref, 1e-4f)) << "rank " << r;
    EXPECT_TRUE(t::allclose(dx[r], dx_ref, 1e-4f)) << "rank " << r;
  }
}

TEST(Tp1d, TransformerBlockMatchesSerial) {
  const int p = 2;
  const std::int64_t b = 1, s = 3, h = 8, heads = 2, f = 16;
  TpWorld w(tp_config(core::TpMode::k1d, p));

  nn::TransformerBlock serial("t", h, heads, f, 41);
  auto x = t::randn(t::Shape{b, s, h}, 42);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 43);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int r) {
    tp::TransformerBlock1D blk(w.env(r), "t", h, heads, f, 41);
    y[r] = blk.forward(x);
    dx[r] = blk.backward(dy);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(t::allclose(y[r], y_ref, 1e-3f)) << "rank " << r;
    EXPECT_TRUE(t::allclose(dx[r], dx_ref, 1e-3f)) << "rank " << r;
  }
}

TEST(Tp1d, RowLinearAllReduceBytesMatchRingFormula) {
  const int p = 4;
  const std::int64_t in = 8, out = 8, rows = 4;
  TpWorld w(tp_config(core::TpMode::k1d, p));
  auto x = t::randn(t::Shape{rows, in}, 1);
  w.cluster.run([&](int r) {
    tp::Linear1DRow lin(w.env(r), "l", in, out, 2);
    lin.forward(t::chunk(x, -1, p, r));
  });
  // forward = exactly one ring all-reduce of (rows*out) fp32 elements
  const std::int64_t payload = rows * out * 4;
  EXPECT_EQ(w.cluster.total_bytes_sent(),
            p * col::bytes_sent_per_rank(col::Op::kAllReduce, p, payload));
}

// ---- 2D -----------------------------------------------------------------------

namespace {

/// Run a two-sided comparison of a 2D linear against serial, with nonzero
/// bias propagated into the shards.
void check_2d_linear(int p, std::int64_t in, std::int64_t out,
                     std::int64_t rows) {
  const int q = core::Config::exact_sqrt(p);
  TpWorld w(tp_config(core::TpMode::k2d, p));

  nn::Linear serial("l", in, out, 51);
  auto bias_full = t::randn(t::Shape{out}, 52);
  serial.bias()->value = bias_full;
  auto x = t::randn(t::Shape{rows, in}, 53);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, out}, 54);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dw(p), db(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::Linear2D lin(w.env(g), "l", in, out, 51);
    lin.bias()->value = t::chunk(bias_full, 0, q, c);
    auto x_blk = tp::Linear2D::shard_activation(x, q, r, c);
    auto dy_blk = tp::Linear2D::shard_activation(dy, q, r, c);
    y[g] = lin.forward(x_blk);
    dx[g] = lin.backward(dy_blk);
    dw[g] = lin.weight().grad.clone();
    db[g] = lin.bias()->grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    const int r = g / q, c = g % q;
    EXPECT_TRUE(t::allclose(y[g], tp::Linear2D::shard_activation(y_ref, q, r, c),
                            1e-4f))
        << "block " << r << "," << c;
    EXPECT_TRUE(t::allclose(
        dx[g], tp::Linear2D::shard_activation(dx_ref, q, r, c), 1e-4f));
    auto dw_ref = t::chunk(t::chunk(serial.weight().grad, 0, q, r), 1, q, c);
    EXPECT_TRUE(t::allclose(dw[g], dw_ref, 1e-4f));
    EXPECT_TRUE(
        t::allclose(db[g], t::chunk(serial.bias()->grad, 0, q, c), 1e-4f));
  }
}

}  // namespace

TEST(Tp2d, LinearMatchesSerial4Gpus) { check_2d_linear(4, 8, 12, 6); }
TEST(Tp2d, LinearMatchesSerial9Gpus) { check_2d_linear(9, 9, 18, 9); }

TEST(Tp2d, MlpMatchesSerial) {
  const int p = 4, q = 2;
  const std::int64_t h = 8, f = 16, rows = 4;
  TpWorld w(tp_config(core::TpMode::k2d, p));

  nn::Mlp serial("m", h, f, 61);
  auto x = t::randn(t::Shape{rows, h}, 62);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, h}, 63);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::Mlp2D mlp(w.env(g), "m", h, f, 61);
    y[g] = mlp.forward(tp::Linear2D::shard_activation(x, q, r, c));
    dx[g] = mlp.backward(tp::Linear2D::shard_activation(dy, q, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int r = g / q, c = g % q;
    EXPECT_TRUE(t::allclose(y[g], tp::Linear2D::shard_activation(y_ref, q, r, c),
                            1e-4f));
    EXPECT_TRUE(t::allclose(
        dx[g], tp::Linear2D::shard_activation(dx_ref, q, r, c), 1e-4f));
  }
}

// ---- 2.5D ----------------------------------------------------------------------

TEST(Tp2p5d, LinearMatchesSerial8Gpus) {
  const int p = 8, d = 2, q = 2;
  const std::int64_t in = 8, out = 12, rows = 8;
  TpWorld w(tp_config(core::TpMode::k2p5d, p, d));

  nn::Linear serial("l", in, out, 71);
  auto x = t::randn(t::Shape{rows, in}, 72);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, out}, 73);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dw(p);
  w.cluster.run([&](int g) {
    const int dd = w.ctx.depth_coord(g), r = w.ctx.row_coord(g),
              c = w.ctx.col_coord(g);
    tp::Linear2p5D lin(w.env(g), "l", in, out, 71);
    auto x_blk = tp::Linear2p5D::shard_activation(x, q, d, dd, r, c);
    auto dy_blk = tp::Linear2p5D::shard_activation(dy, q, d, dd, r, c);
    y[g] = lin.forward(x_blk);
    dx[g] = lin.backward(dy_blk);
    dw[g] = lin.weight().grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    const int dd = g / (q * q), r = (g % (q * q)) / q, c = g % q;
    EXPECT_TRUE(t::allclose(
        y[g], tp::Linear2p5D::shard_activation(y_ref, q, d, dd, r, c), 1e-4f));
    EXPECT_TRUE(t::allclose(
        dx[g], tp::Linear2p5D::shard_activation(dx_ref, q, d, dd, r, c), 1e-4f));
    // weight slab dd of grid block (r, c)
    auto block = t::chunk(t::chunk(serial.weight().grad, 0, q, r), 1, q, c);
    EXPECT_TRUE(t::allclose(dw[g], t::chunk(block, 0, d, dd), 1e-4f))
        << "grank " << g;
  }
}

TEST(Tp2p5d, DepthOneDegeneratesTo2d) {
  // depth == 1: 2.5D must equal 2D numerically on the same grid.
  const int p = 4, q = 2;
  const std::int64_t in = 8, out = 8, rows = 4;
  TpWorld w(tp_config(core::TpMode::k2p5d, p, 1));

  nn::Linear serial("l", in, out, 81);
  auto x = t::randn(t::Shape{rows, in}, 82);
  auto y_ref = serial.forward(x);

  std::vector<t::Tensor> y(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::Linear2p5D lin(w.env(g), "l", in, out, 81);
    y[g] = lin.forward(tp::Linear2p5D::shard_activation(x, q, 1, 0, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int r = g / q, c = g % q;
    EXPECT_TRUE(t::allclose(y[g], tp::Linear2D::shard_activation(y_ref, q, r, c),
                            1e-4f));
  }
}

TEST(Tp2p5d, MlpMatchesSerial) {
  const int p = 8, d = 2, q = 2;
  const std::int64_t h = 8, f = 16, rows = 8;
  TpWorld w(tp_config(core::TpMode::k2p5d, p, d));

  nn::Mlp serial("m", h, f, 91);
  auto x = t::randn(t::Shape{rows, h}, 92);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, h}, 93);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int dd = w.ctx.depth_coord(g), r = w.ctx.row_coord(g),
              c = w.ctx.col_coord(g);
    tp::Mlp2p5D mlp(w.env(g), "m", h, f, 91);
    y[g] = mlp.forward(tp::Linear2p5D::shard_activation(x, q, d, dd, r, c));
    dx[g] = mlp.backward(tp::Linear2p5D::shard_activation(dy, q, d, dd, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int dd = g / (q * q), r = (g % (q * q)) / q, c = g % q;
    EXPECT_TRUE(t::allclose(
        y[g], tp::Linear2p5D::shard_activation(y_ref, q, d, dd, r, c), 1e-4f));
    EXPECT_TRUE(t::allclose(
        dx[g], tp::Linear2p5D::shard_activation(dx_ref, q, d, dd, r, c), 1e-4f));
  }
}

// ---- 3D -----------------------------------------------------------------------

TEST(Tp3d, LinearMatchesSerial8Gpus) {
  const int p = 8, l = 2;
  const std::int64_t in = 8, out = 12 * 2, rows = 8;  // out % l^2 == 0
  TpWorld w(tp_config(core::TpMode::k3d, p));

  nn::Linear serial("l", in, out, 101);
  auto x = t::randn(t::Shape{rows, in}, 102);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, out}, 103);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dw(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::Linear3D lin(w.env(g), "l", in, out, 101);
    auto x_blk = tp::Linear3D::shard_input(x, l, i, j, k);
    auto dy_blk = tp::Linear3D::shard_output(dy, l, i, j, k);
    y[g] = lin.forward(x_blk);
    dx[g] = lin.backward(dy_blk);
    dw[g] = lin.weight().grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_TRUE(
        t::allclose(y[g], tp::Linear3D::shard_output(y_ref, l, i, j, k), 1e-4f))
        << "grank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::Linear3D::shard_input(dx_ref, l, i, j, k), 1e-4f))
        << "grank " << g;
    // W layout: rows chunk k, cols chunk (j*l + i)
    auto dw_ref = t::chunk(t::chunk(serial.weight().grad, 0, l, k), 1, l * l,
                           j * l + i);
    EXPECT_TRUE(t::allclose(dw[g], dw_ref, 1e-4f)) << "grank " << g;
  }
}

TEST(Tp3d, LayoutConversionRoundTrip) {
  const int p = 8, l = 2;
  const std::int64_t rows = 8, n = 8;
  TpWorld w(tp_config(core::TpMode::k3d, p));
  auto full = t::randn(t::Shape{rows, n}, 111);

  std::vector<t::Tensor> as_x(p), back(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::Linear3D lin(w.env(g), "l", n, n, 112);
    auto y_blk = tp::Linear3D::shard_output(full, l, i, j, k);
    as_x[g] = lin.convert_y_to_x_layout(y_blk);
    back[g] = lin.convert_x_to_y_layout(as_x[g]);
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_EQ(t::max_diff(as_x[g], tp::Linear3D::shard_input(full, l, i, j, k)),
              0.0f);
    EXPECT_EQ(t::max_diff(back[g], tp::Linear3D::shard_output(full, l, i, j, k)),
              0.0f);
  }
}

TEST(Tp3d, MlpMatchesSerial) {
  const int p = 8, l = 2;
  const std::int64_t h = 8, f = 16, rows = 8;
  TpWorld w(tp_config(core::TpMode::k3d, p));

  nn::Mlp serial("m", h, f, 121);
  auto x = t::randn(t::Shape{rows, h}, 122);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{rows, h}, 123);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::Mlp3D mlp(w.env(g), "m", h, f, 121);
    y[g] = mlp.forward(tp::Linear3D::shard_input(x, l, i, j, k));
    dx[g] = mlp.backward(tp::Linear3D::shard_output(dy, l, i, j, k));
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_TRUE(
        t::allclose(y[g], tp::Linear3D::shard_output(y_ref, l, i, j, k), 1e-4f))
        << "grank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::Linear3D::shard_input(dx_ref, l, i, j, k), 1e-4f))
        << "grank " << g;
  }
}

// ---- Table 1 communication volumes ----------------------------------------------

TEST(CommVolume, Table1Formulas) {
  tp::MatmulShape m;  // b=32, s=512, h=1024 as in Figure 5
  // spot values computed by hand from Table 1
  EXPECT_EQ(tp::comm_volume_1d(m, 16), 2 * 15 * m.sx());
  EXPECT_EQ(tp::comm_volume_2d(m, 16), 3 * 3 * (m.sx() + m.sw()));
  EXPECT_EQ(tp::comm_volume_2p5d(m, 16, 4), 3 * 1 * (m.sx() / 4 + m.sw()));
  EXPECT_EQ(tp::comm_volume_3d(m, 8), 2 * 1 * (m.sx() + m.sw() + m.sy()) / 2);
}

TEST(CommVolume, AdvancedModesBeat1dAtScale) {
  tp::MatmulShape m;
  for (int p : {16, 64, 256}) {
    EXPECT_LT(tp::comm_volume_2d(m, p), tp::comm_volume_1d(m, p)) << p;
    EXPECT_LT(tp::comm_volume_2p5d(m, p, 4), tp::comm_volume_1d(m, p)) << p;
  }
  for (int p : {8, 64, 512}) {
    EXPECT_LT(tp::comm_volume_3d(m, p), tp::comm_volume_1d(m, p)) << p;
  }
}

TEST(CommVolume, MeasuredTrafficOrdersLikeTable1) {
  // Functional layers at equal (rows, h) on p=8... 1D vs 3D; and p=4 1D vs 2D.
  const std::int64_t rows = 8, h = 8;
  auto measure = [&](core::TpMode mode, int p, int depth) {
    TpWorld w(tp_config(mode, p, depth));
    auto x = t::randn(t::Shape{rows, h}, 1);
    auto dy = t::randn(t::Shape{rows, h}, 2);
    w.cluster.run([&](int g) {
      switch (mode) {
        case core::TpMode::k1d: {
          // Megatron pair: col (no gather) + row — the Figure 4 module
          tp::Linear1DCol c1(w.env(g), "c", h, h, 3, false);
          tp::Linear1DRow r1(w.env(g), "r", h, h, 4);
          auto y = r1.forward(c1.forward(x));
          (void)y;
          c1.backward(r1.backward(dy));
          break;
        }
        case core::TpMode::k2d: {
          const int q = w.ctx.grid_side();
          tp::Linear2D lin(w.env(g), "l", h, h, 3);
          auto xb = tp::Linear2D::shard_activation(x, q, w.ctx.row_coord(g),
                                                   w.ctx.col_coord(g));
          auto dyb = tp::Linear2D::shard_activation(dy, q, w.ctx.row_coord(g),
                                                    w.ctx.col_coord(g));
          lin.backward(lin.forward(xb).shares_storage_with(xb) ? dyb : dyb);
          break;
        }
        case core::TpMode::k3d: {
          const int l = w.ctx.grid_side();
          tp::Linear3D lin(w.env(g), "l", h, h, 3);
          auto xb = tp::Linear3D::shard_input(x, l, w.ctx.cube_i(g),
                                              w.ctx.cube_j(g), w.ctx.cube_k(g));
          auto dyb = tp::Linear3D::shard_output(dy, l, w.ctx.cube_i(g),
                                                w.ctx.cube_j(g), w.ctx.cube_k(g));
          lin.forward(xb);
          lin.backward(dyb);
          break;
        }
        default:
          break;
      }
    });
    return w.cluster.total_bytes_sent();
  };

  // At p=8 the 3D algorithm must move less than the two 1D all-reduces.
  EXPECT_LT(measure(core::TpMode::k3d, 8, 1), measure(core::TpMode::k1d, 8, 1));
}

// ---- memory model cross-validation -----------------------------------------------

namespace {

std::int64_t measured_two_layer_peak(core::TpMode mode, int p, int depth,
                                     std::int64_t b, std::int64_t h) {
  TpWorld w(tp_config(mode, p, depth));
  auto x = t::randn(t::Shape{b, h}, 5);
  auto dy = t::randn(t::Shape{b, h}, 6);
  w.cluster.run([&](int g) {
    tp::Env env = w.env(g);
    switch (mode) {
      case core::TpMode::k1d: {
        tp::Linear1DCol l1(env, "a", h, h, 7, false);
        tp::Linear1DRow l2(env, "b", h, h, 8);
        auto y = l2.forward(l1.forward(x));
        (void)y;
        l1.backward(l2.backward(dy));
        break;
      }
      case core::TpMode::k2d: {
        const int q = w.ctx.grid_side();
        const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
        tp::Linear2D l1(env, "a", h, h, 7);
        tp::Linear2D l2(env, "b", h, h, 8);
        auto y = l2.forward(l1.forward(tp::Linear2D::shard_activation(x, q, r, c)));
        (void)y;
        l1.backward(l2.backward(tp::Linear2D::shard_activation(dy, q, r, c)));
        break;
      }
      case core::TpMode::k2p5d: {
        const int q = w.ctx.grid_side(), d = w.ctx.depth();
        const int dd = w.ctx.depth_coord(g), r = w.ctx.row_coord(g),
                  c = w.ctx.col_coord(g);
        tp::Linear2p5D l1(env, "a", h, h, 7);
        tp::Linear2p5D l2(env, "b", h, h, 8);
        auto y = l2.forward(
            l1.forward(tp::Linear2p5D::shard_activation(x, q, d, dd, r, c)));
        (void)y;
        l1.backward(
            l2.backward(tp::Linear2p5D::shard_activation(dy, q, d, dd, r, c)));
        break;
      }
      case core::TpMode::k3d: {
        const int l = w.ctx.grid_side();
        const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
        tp::Linear3D l1(env, "a", h, h, 7);
        tp::Linear3D l2(env, "b", h, h, 8);
        auto y1 = l1.forward(tp::Linear3D::shard_input(x, l, i, j, k));
        auto y2 = l2.forward(l1.convert_y_to_x_layout(y1));
        (void)y2;
        auto d2 = l2.backward(tp::Linear3D::shard_output(dy, l, i, j, k));
        l1.backward(l1.convert_x_to_y_layout(d2));
        break;
      }
      default:
        break;
    }
  });
  return w.cluster.device(0).mem().peak();
}

}  // namespace

struct MemModelCase {
  core::TpMode mode;
  int p;
  int depth;
  std::int64_t b, h;
};

class MemoryModelValidation : public ::testing::TestWithParam<MemModelCase> {};

TEST_P(MemoryModelValidation, AnalyticPeakEqualsMeasured) {
  const auto c = GetParam();
  tp::TwoLayerShape shape{c.b, c.h, 4};
  EXPECT_EQ(tp::two_layer_peak(c.mode, shape, c.p, c.depth),
            measured_two_layer_peak(c.mode, c.p, c.depth, c.b, c.h));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MemoryModelValidation,
    ::testing::Values(
        MemModelCase{core::TpMode::k1d, 4, 1, 8, 16},
        MemModelCase{core::TpMode::k1d, 8, 1, 16, 32},
        MemModelCase{core::TpMode::k2d, 4, 1, 8, 16},
        MemModelCase{core::TpMode::k2d, 9, 1, 9, 18},
        MemModelCase{core::TpMode::k2p5d, 8, 2, 16, 16},
        MemModelCase{core::TpMode::k3d, 8, 1, 16, 16}));

TEST(MemoryModel, AdvancedModesBeat1dAtPaperScale) {
  // the Figure 8 claims at the paper's sizes: transformer-style inputs are
  // (batch, seq, hidden), so the row count is batch * seq — the regime where
  // 1D's replicated block inputs/outputs dominate.
  tp::TwoLayerShape big{512 * 512, 16384, 4};
  const auto m1d = tp::two_layer_peak(core::TpMode::k1d, big, 8);
  const auto m25 = tp::two_layer_peak(core::TpMode::k2p5d, big, 8, 2);
  const auto m3d = tp::two_layer_peak(core::TpMode::k3d, big, 8);
  EXPECT_LT(m25, m1d);
  EXPECT_LT(m3d, m1d);
  EXPECT_LT(m3d, m25);
  // the headline ratios: 2.5D and 3D are tens of percent below 1D
  EXPECT_GT(1.0 - static_cast<double>(m25) / m1d, 0.40);
  EXPECT_GT(1.0 - static_cast<double>(m3d) / m1d, 0.55);
}

// ---- simulated transformer -------------------------------------------------------

TEST(SimTransformer, OneStepAdvancesClockAndTraffic) {
  TpWorld w(tp_config(core::TpMode::k1d, 4));
  tp::TransformerShape shape;
  shape.layers = 2;
  shape.hidden = 512;
  shape.heads = 8;
  shape.batch = 8;
  shape.seq = 128;
  w.cluster.run([&](int g) {
    tp::SimTransformer model(w.env(g), core::TpMode::k1d, shape);
    model.train_step();
  });
  EXPECT_GT(w.cluster.max_clock(), 0.0);
  EXPECT_GT(w.cluster.total_bytes_sent(), 0);
}

TEST(SimTransformer, AdvancedModesMoveFewerBytesAtScale) {
  tp::TransformerShape shape;
  shape.layers = 2;
  shape.hidden = 4096;
  shape.heads = 64;
  shape.batch = 64;
  shape.seq = 197;  // ViT-224/16 sequence length

  auto traffic = [&](core::TpMode mode, int p, int depth) {
    TpWorld w(tp_config(mode, p, depth));
    w.cluster.run([&](int g) {
      tp::SimTransformer model(w.env(g), mode, shape);
      model.train_step();
    });
    return w.cluster.total_bytes_sent();
  };
  const auto b1d = traffic(core::TpMode::k1d, 64, 1);
  const auto b2d = traffic(core::TpMode::k2d, 64, 1);
  const auto b3d = traffic(core::TpMode::k3d, 64, 1);
  EXPECT_LT(b2d, b1d);
  EXPECT_LT(b3d, b1d);
}

TEST(SimTransformer, MemoryFitGate) {
  TpWorld w(tp_config(core::TpMode::k1d, 4));
  tp::TransformerShape shape;
  shape.layers = 24;
  shape.hidden = 2048;
  shape.heads = 32;
  shape.seq = 197;
  shape.bytes_per_elem = 2;
  shape.with_optimizer = true;

  shape.batch = 8;
  tp::SimTransformer small(w.env(0), core::TpMode::k1d, shape);
  EXPECT_TRUE(small.fits());

  shape.batch = 1 << 20;  // absurd batch cannot fit
  tp::SimTransformer huge(w.env(0), core::TpMode::k1d, shape);
  EXPECT_FALSE(huge.fits());
}

TEST(SimTransformer, TwoPointFiveDAccountsDepthTraffic) {
  // 2.5D at depth 2 must issue the weight-slab gather/scatter on the depth
  // group and still move fewer bytes than 1D at the same scale.
  tp::TransformerShape shape;
  shape.layers = 2;
  shape.hidden = 2048;
  shape.heads = 32;
  shape.batch = 64;
  shape.seq = 197;

  auto run = [&](core::TpMode mode, int p, int depth) {
    TpWorld w(tp_config(mode, p, depth));
    w.cluster.run([&](int g) {
      tp::SimTransformer model(w.env(g), mode, shape);
      model.train_step();
    });
    return w.cluster.total_bytes_sent();
  };
  const auto b1d = run(core::TpMode::k1d, 8, 1);
  const auto b25 = run(core::TpMode::k2p5d, 8, 2);
  EXPECT_GT(b25, 0);
  EXPECT_LT(b25, b1d);
}
