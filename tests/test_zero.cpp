// ZeRO tests: sharded tensor lifecycle, stage 1/2/3 equivalence with serial
// Adam, chunk manager accounting, offload policies, and the Figure 14
// dynamic-vs-static simulation.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "optim/optimizer.hpp"
#include "zero/chunk.hpp"
#include "zero/offload.hpp"
#include "zero/sharded_tensor.hpp"
#include "zero/zero_optimizer.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace zero = ca::zero;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;

namespace {

struct DpWorld {
  explicit DpWorld(int n, sim::Topology topo)
      : cluster(std::move(topo)), backend(cluster), ctx(backend, config(n)) {
    // Serial-equivalence suite: pin the wire to fp32 (see DESIGN.md §10).
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }
  explicit DpWorld(int n) : DpWorld(n, sim::Topology::uniform(n, 100e9)) {}

  static core::Config config(int n) {
    core::Config cfg;
    cfg.data_parallel_size = n;
    return cfg;
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

}  // namespace

// ---- ShardedTensor ---------------------------------------------------------------

TEST(ShardedTensor, GatherReconstructsFullValue) {
  const int p = 4;
  DpWorld w(p);
  auto full = t::randn(t::Shape{3, 7}, 5);  // 21 elements: uneven shards
  zero::ShardingStrategy strategy;
  std::vector<t::Tensor> gathered(p);
  w.cluster.run([&](int g) {
    zero::ShardedTensor st("w", full, w.ctx.data_group(g), g, strategy);
    EXPECT_EQ(st.state(), zero::TensorState::kHold);
    gathered[g] = st.gather().clone();
    EXPECT_EQ(st.state(), zero::TensorState::kCompute);
    st.release();
    EXPECT_EQ(st.state(), zero::TensorState::kHold);
  });
  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(t::max_diff(gathered[g], full), 0.0f) << g;
  }
}

TEST(ShardedTensor, ReleaseWritesBackUpdatedValues) {
  const int p = 2;
  DpWorld w(p);
  auto full = t::arange(8).reshape(t::Shape{2, 4});
  zero::ShardingStrategy strategy;
  std::vector<t::Tensor> second(p);
  w.cluster.run([&](int g) {
    zero::ShardedTensor st("w", full, w.ctx.data_group(g), g, strategy);
    auto updated = t::mul_scalar(st.gather(), 2.0f);
    st.release(&updated);
    second[g] = st.gather().clone();
    st.release();
  });
  for (int g = 0; g < p; ++g)
    EXPECT_EQ(t::max_diff(second[g], t::mul_scalar(full, 2.0f)), 0.0f);
}

TEST(ShardedTensor, LifecycleHooksFire) {
  DpWorld w(2);
  auto full = t::ones(t::Shape{4});
  zero::ShardingStrategy strategy;
  std::vector<int> transitions(2, 0);
  w.cluster.run([&](int g) {
    zero::LifecycleHooks hooks;
    hooks.on_state_change = [&, g](const std::string&, zero::TensorState,
                                   zero::TensorState) {
      ++transitions[static_cast<std::size_t>(g)];
    };
    zero::ShardedTensor st("w", full, w.ctx.data_group(g), g, strategy, hooks);
    st.gather();
    st.release();
  });
  EXPECT_EQ(transitions[0], 2);
  EXPECT_EQ(transitions[1], 2);
}

TEST(ShardingStrategy, PaddedEqualRanges) {
  zero::ShardingStrategy s;
  // 10 elements over 4 ranks: padded chunk 3
  EXPECT_EQ(s.shard_range(10, 0, 4).size(), 3);
  EXPECT_EQ(s.shard_range(10, 2, 4).size(), 3);
  EXPECT_EQ(s.shard_range(10, 3, 4).size(), 1);  // tail
  EXPECT_EQ(s.shard_range(10, 3, 4).begin, 9);
}

// ---- ZeroOptimizer stage equivalence ------------------------------------------------

namespace {

/// Train a tiny model for `steps` with ZeRO at `stage` over `p` ranks; every
/// rank sees the same batch (average=true divides the p-fold sum back).
/// Returns rank 0's final full parameter value.
t::Tensor zero_train(int p, int stage, int steps) {
  DpWorld w(p);
  auto x = t::randn(t::Shape{6, 4}, 71);
  std::vector<std::int64_t> labels{0, 1, 2, 0, 1, 2};
  std::vector<t::Tensor> final_w(p);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 4, 3, 72);
    zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g), model.parameters(),
                            {}, stage);
    for (int s = 0; s < steps; ++s) {
      opt.gather_params();
      opt.zero_grad();
      auto logits = model.forward(stage == 3 ? x : x);
      t::Tensor dl;
      t::cross_entropy(logits, labels, dl);
      model.backward(dl);
      opt.step();
    }
    opt.gather_params();
    final_w[g] = model.parameters()[0]->value.clone();
  });
  for (int g = 1; g < p; ++g) {
    EXPECT_EQ(t::max_diff(final_w[0], final_w[g]), 0.0f)
        << "ranks disagree at stage " << stage;
  }
  return final_w[0];
}

t::Tensor serial_train(int steps) {
  auto x = t::randn(t::Shape{6, 4}, 71);
  std::vector<std::int64_t> labels{0, 1, 2, 0, 1, 2};
  nn::Linear model("m", 4, 3, 72);
  ca::optim::Adam opt(model.parameters(), {});
  for (int s = 0; s < steps; ++s) {
    opt.zero_grad();
    auto logits = model.forward(x);
    t::Tensor dl;
    t::cross_entropy(logits, labels, dl);
    model.backward(dl);
    opt.step();
  }
  return model.parameters()[0]->value.clone();
}

}  // namespace

class ZeroStageEquivalence : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ZeroStageEquivalence, MatchesSerialAdam) {
  const auto [p, stage] = GetParam();
  auto ref = serial_train(3);
  auto got = zero_train(p, stage, 3);
  EXPECT_TRUE(t::allclose(got, ref, 1e-5f, 1e-6f))
      << "p=" << p << " stage=" << stage
      << " maxdiff=" << t::max_diff(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndWorlds, ZeroStageEquivalence,
    ::testing::Values(std::pair{2, 1}, std::pair{2, 2}, std::pair{2, 3},
                      std::pair{4, 1}, std::pair{4, 2}, std::pair{4, 3},
                      std::pair{3, 3}));

TEST(ZeroOptimizer, ModelStateBytesShrinkWithStage) {
  DpWorld w(4);
  std::vector<std::int64_t> bytes(4);
  w.cluster.run([&](int g) {
    if (g != 0) {
      // all ranks participate in construction collectives? construction has
      // no collectives; only rank 0 builds here.
    }
    nn::Linear model("m", 64, 64, 5);
    for (int stage : {1, 2, 3}) {
      zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g),
                              model.parameters(), {}, stage);
      if (g == 0) bytes[static_cast<std::size_t>(stage)] = opt.model_state_bytes();
    }
  });
  EXPECT_GT(bytes[1], bytes[2]);
  EXPECT_GT(bytes[2], bytes[3]);
}

TEST(ZeroOptimizer, Stage3FreesFullParamsBetweenUses) {
  DpWorld w(2);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 4, 4, 9);
    zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g), model.parameters(),
                            {}, 3);
    EXPECT_EQ(model.parameters()[0]->value.numel(), 0);
    opt.gather_params();
    EXPECT_EQ(model.parameters()[0]->value.numel(), 16);
    opt.release_params();
    EXPECT_EQ(model.parameters()[0]->value.numel(), 0);
  });
}

// ---- chunks ---------------------------------------------------------------------------

TEST(ChunkManager, PacksAppendOnly) {
  DpWorld w(1);
  w.cluster.run([&](int g) {
    zero::ChunkManager cm(w.env(g), 100, zero::Placement::kHost);
    cm.append("a", 40);
    cm.append("b", 40);
    cm.append("c", 40);  // does not fit chunk 0 -> opens chunk 1
    EXPECT_EQ(cm.num_chunks(), 2u);
    EXPECT_EQ(cm.entry(0).chunk_id, 0);
    EXPECT_EQ(cm.entry(1).offset, 40);
    EXPECT_EQ(cm.entry(2).chunk_id, 1);
  });
}

TEST(ChunkManager, OversizedTensorGetsDedicatedChunk) {
  DpWorld w(1);
  w.cluster.run([&](int g) {
    zero::ChunkManager cm(w.env(g), 100, zero::Placement::kHost);
    cm.append("big", 250);
    cm.append("small", 10);
    EXPECT_EQ(cm.num_chunks(), 2u);
    EXPECT_EQ(cm.chunk(0).capacity_bytes, 250);
    EXPECT_EQ(cm.chunk(1).capacity_bytes, 100);
  });
}

TEST(ChunkManager, MoveChargesClockAndRetracksMemory) {
  DpWorld w(1);
  w.cluster.run([&](int g) {
    auto env = w.env(g);
    zero::ChunkManager cm(env, 1000, zero::Placement::kHost);
    cm.append("a", 1000);
    EXPECT_EQ(cm.host_bytes(), 1000);
    EXPECT_EQ(cm.device_bytes(), 0);
    const double before = env.dev().clock();
    cm.move_to(0, zero::Placement::kDevice);
    EXPECT_EQ(cm.device_bytes(), 1000);
    EXPECT_EQ(cm.host_bytes(), 0);
    const double bw = w.cluster.topology().host_link_bandwidth();
    const double expect = zero::ChunkManager::kMoveLatency + 1000.0 / bw;
    EXPECT_NEAR(env.dev().clock() - before, expect, 1e-12);
    cm.move_to(0, zero::Placement::kDevice);  // already there: free
    EXPECT_NEAR(env.dev().clock() - before, expect, 1e-12);
  });
}

TEST(ChunkManager, Fp16ReuseFlagsFlip) {
  DpWorld w(1);
  w.cluster.run([&](int g) {
    zero::ChunkManager cm(w.env(g), 100, zero::Placement::kDevice);
    cm.append("p", 50);
    const auto before_dev = cm.device_bytes();
    cm.reuse_as_grads(0);  // Figure 6: no new memory
    EXPECT_EQ(cm.device_bytes(), before_dev);
    EXPECT_TRUE(cm.chunk(0).holds_grads);
    cm.reuse_as_params(0);
    EXPECT_FALSE(cm.chunk(0).holds_grads);
  });
}

// ---- offload policies and Figure 14 ---------------------------------------------------

TEST(OffloadPolicy, StaticAlwaysHost) {
  zero::StaticOffloadPolicy p;
  EXPECT_EQ(p.place_param_chunk(1, 0, std::int64_t{1} << 40),
            zero::Placement::kHost);
  EXPECT_EQ(p.gpu_update_fraction(100, std::int64_t{1} << 40), 0.0);
  EXPECT_FALSE(p.reuse_fp16_storage());
}

TEST(OffloadPolicy, DynamicRespectsBudget) {
  zero::DynamicOffloadPolicy p;
  EXPECT_EQ(p.place_param_chunk(100, 0, 1000), zero::Placement::kDevice);
  EXPECT_EQ(p.place_param_chunk(100, 950, 1000), zero::Placement::kHost);
  EXPECT_DOUBLE_EQ(p.gpu_update_fraction(100, 50), 0.5);
  EXPECT_DOUBLE_EQ(p.gpu_update_fraction(100, 500), 1.0);
  EXPECT_DOUBLE_EQ(p.gpu_update_fraction(100, -5), 0.0);
  EXPECT_TRUE(p.reuse_fp16_storage());
}

namespace {

double offload_step_time(const zero::OffloadPolicy& policy, int gpus,
                         std::int64_t batch_per_gpu, std::int64_t hidden = 4096,
                         std::int64_t layers = 50) {
  // System II is the paper's machine for Figure 14; build a sub-cluster of
  // the right size with the same characteristics.
  DpWorld w(gpus, gpus == 8 ? sim::Topology::system_ii()
                            : sim::Topology::uniform(gpus, 15e9, sim::a100_80gb()));
  zero::OffloadWorkload work;
  work.layers = layers;
  work.hidden = hidden;
  work.batch_per_gpu = batch_per_gpu;
  w.cluster.run([&](int g) {
    zero::SimOffloadTrainer trainer(w.env(g), work, policy);
    trainer.train_step();
  });
  return w.cluster.max_clock();
}

}  // namespace

TEST(Offload, DynamicBeatsStaticAtSmallBatch) {
  // Figure 14: GPT-2 10B, batch 4 per GPU — the GPU is underused, the static
  // policy still offloads everything and pays PCIe + CPU-Adam every step.
  zero::StaticOffloadPolicy stat;
  zero::DynamicOffloadPolicy dyn;
  for (int gpus : {1, 4, 8}) {
    const double ts = offload_step_time(stat, gpus, 4);
    const double td = offload_step_time(dyn, gpus, 4);
    EXPECT_GT(ts / td, 1.2) << gpus << " gpus";
  }
}

TEST(Offload, AdvantageShrinksAtLargeBatch) {
  // OPT-13B at batch 32: both systems nearly fill the GPU; the paper reports
  // the gap closing to 1.33x.
  zero::StaticOffloadPolicy stat;
  zero::DynamicOffloadPolicy dyn;
  const double small_gap = offload_step_time(stat, 8, 4, 5120, 40) /
                           offload_step_time(dyn, 8, 4, 5120, 40);
  const double large_gap = offload_step_time(stat, 8, 32, 5120, 40) /
                           offload_step_time(dyn, 8, 32, 5120, 40);
  EXPECT_LT(large_gap, small_gap);
  EXPECT_GT(large_gap, 1.0);
}

TEST(Offload, DynamicKeepsChunksOnDeviceWhenTheyFit) {
  DpWorld w(8, sim::Topology::system_ii());
  zero::DynamicOffloadPolicy dyn;
  zero::OffloadWorkload work;  // 10B params over 8 ranks: 2.5GB fp16 shards
  work.batch_per_gpu = 4;
  std::vector<std::int64_t> dev_bytes(8);
  w.cluster.run([&](int g) {
    zero::SimOffloadTrainer trainer(w.env(g), work, dyn);
    dev_bytes[static_cast<std::size_t>(g)] = trainer.device_param_bytes();
  });
  // the whole fp16 shard fits comfortably into an A100-80GB
  EXPECT_GE(dev_bytes[0], work.params() / 8 * 2);
}
