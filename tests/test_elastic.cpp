// Elastic continuation (DESIGN.md section 13): a rank fail-stops mid-run,
// the survivors meet in the ElasticCoordinator, re-plan the layout for the
// shrunk world, re-shard the in-memory checkpoint, and keep training inside
// the same Cluster::run — with losses bit-identical to a cold restart from
// the same checkpoint on the same shrunk layout.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "autop/planner.hpp"
#include "engine/checkpoint.hpp"
#include "engine/elastic.hpp"
#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tp/linear1d.hpp"
#include "tp/linear2d.hpp"
#include "tp/linear2p5d.hpp"
#include "tp/linear3d.hpp"
#include "tp/relayout.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace engine = ca::engine;
namespace optim = ca::optim;
namespace autop = ca::autop;
namespace obs = ca::obs;

namespace {

constexpr std::int64_t kRows = 24;
constexpr std::int64_t kHidden = 48;
constexpr std::uint64_t kSeed = 7;
constexpr std::int64_t kTotalSteps = 6;
constexpr std::int64_t kKillStep = 3;

/// Scoped environment variable (restores by unsetting on destruction).
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  const char* name_;
};

/// One TP linear layer driven full-in / full-out on whatever layout the
/// context carries: the input is sharded per mode, the local output gathered
/// back to full form through an ad-hoc ShardSpec, so the training loop above
/// it is layout-agnostic — exactly what lets one body span a recovery whose
/// re-plan switched the tensor grid.
struct ElasticModel {
  ElasticModel(const tp::Env& env, std::uint64_t seed) : env_(env) {
    core::ParallelContext& ctx = *env.ctx;
    mode_ = ctx.config().tensor_mode;
    switch (mode_) {
      case core::TpMode::kNone:
      case core::TpMode::k1d:
        layer_ = std::make_unique<tp::Linear1DCol>(env, "l", kHidden, kHidden,
                                                   seed, /*gather_output=*/true);
        break;
      case core::TpMode::k2d:
        layer_ = std::make_unique<tp::Linear2D>(env, "l", kHidden, kHidden, seed);
        break;
      case core::TpMode::k2p5d:
        layer_ =
            std::make_unique<tp::Linear2p5D>(env, "l", kHidden, kHidden, seed);
        break;
      case core::TpMode::k3d:
        layer_ = std::make_unique<tp::Linear3D>(env, "l", kHidden, kHidden, seed);
        break;
    }
  }

  [[nodiscard]] nn::Module& module() { return *layer_; }
  [[nodiscard]] std::vector<nn::Parameter*> params() {
    return layer_->parameters();
  }

  t::Tensor forward_full(const t::Tensor& x) {
    core::ParallelContext& ctx = *env_.ctx;
    const int g = env_.grank;
    switch (mode_) {
      case core::TpMode::kNone:
      case core::TpMode::k1d:
        return layer_->forward(x);  // gather_output gives the full y
      case core::TpMode::k2d: {
        const int q = ctx.grid_side();
        const int r = ctx.row_coord(g), c = ctx.col_coord(g);
        auto y = layer_->forward(tp::Linear2D::shard_activation(x, q, r, c));
        const nn::ShardSpec spec{kRows, kHidden, q, r, q, c, 1, true};
        return tp::gather_full(ctx.tensor_group(g), g, spec, y);
      }
      case core::TpMode::k2p5d: {
        const int q = ctx.grid_side(), d = ctx.depth();
        const int r = ctx.row_coord(g), c = ctx.col_coord(g);
        const int dd = ctx.depth_coord(g);
        auto y = layer_->forward(
            tp::Linear2p5D::shard_activation(x, q, d, dd, r, c));
        const nn::ShardSpec spec{kRows, kHidden, d * q, dd * q + r, q, c, 1,
                                 true};
        return tp::gather_full(ctx.tensor_group(g), g, spec, y);
      }
      case core::TpMode::k3d: {
        const int l = ctx.grid_side();
        const int i = ctx.cube_i(g), j = ctx.cube_j(g), k = ctx.cube_k(g);
        auto y = layer_->forward(tp::Linear3D::shard_input(x, l, i, j, k));
        const nn::ShardSpec spec{kRows, kHidden, l * l, i * l + k, l, j, 1,
                                 true};
        return tp::gather_full(ctx.tensor_group(g), g, spec, y);
      }
    }
    throw std::logic_error("unreachable");
  }

  void backward_full(const t::Tensor& dy) {
    core::ParallelContext& ctx = *env_.ctx;
    const int g = env_.grank;
    switch (mode_) {
      case core::TpMode::kNone:
      case core::TpMode::k1d:
        layer_->backward(dy);
        return;
      case core::TpMode::k2d: {
        const int q = ctx.grid_side();
        layer_->backward(tp::Linear2D::shard_activation(
            dy, q, ctx.row_coord(g), ctx.col_coord(g)));
        return;
      }
      case core::TpMode::k2p5d: {
        layer_->backward(tp::Linear2p5D::shard_activation(
            dy, ctx.grid_side(), ctx.depth(), ctx.depth_coord(g),
            ctx.row_coord(g), ctx.col_coord(g)));
        return;
      }
      case core::TpMode::k3d: {
        layer_->backward(tp::Linear3D::shard_output(
            dy, ctx.grid_side(), ctx.cube_i(g), ctx.cube_j(g), ctx.cube_k(g)));
        return;
      }
    }
  }

  /// One training step on deterministic data: MSE against a fixed target,
  /// identical float-by-float on every layout's gathered y.
  float train_step(std::int64_t s, optim::Optimizer& opt) {
    auto x = t::randn(t::Shape{kRows, kHidden}, 1000 + static_cast<std::uint64_t>(s));
    auto target = t::randn(t::Shape{kRows, kHidden}, 99);
    auto y = forward_full(x);
    auto yd = y.data();
    auto td = target.data();
    const auto n = static_cast<std::int64_t>(yd.size());
    float loss = 0.0f;
    t::Tensor dy(t::Shape{kRows, kHidden}, 0.0f);
    auto dyd = dy.data();
    const float inv = 1.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      const float d = yd[static_cast<std::size_t>(i)] -
                      td[static_cast<std::size_t>(i)];
      loss += d * d * inv;
      dyd[static_cast<std::size_t>(i)] = 2.0f * d * inv;
    }
    opt.zero_grad();
    backward_full(dy);
    opt.step();
    return loss;
  }

  tp::Env env_;
  core::TpMode mode_;
  std::unique_ptr<nn::Module> layer_;
};

struct ScenarioResult {
  std::vector<std::vector<float>> elastic_losses;  // [cluster rank][step]
  std::vector<std::vector<float>> cold_losses;     // [survivor rank][step]
  std::int64_t restore_step = -1;
  core::Config final_config;
  int recoveries = 0;
};

/// The full elastic drill: train `mode` on `tp` ranks, kill the last rank at
/// kKillStep, let the coordinator shrink the world and finish the run, then
/// cold-restart a fresh identity cluster of the final layout from the same
/// checkpoint bytes and replay the same steps.
ScenarioResult run_elastic_scenario(core::TpMode mode, int tp, int depth) {
  ScenarioResult out;
  core::Config cfg;
  cfg.tensor_parallel_size = tp;
  cfg.tensor_mode = mode;
  cfg.tensor_depth = depth;
  cfg.elastic = "on";

  sim::Cluster cluster(sim::Topology::uniform(cfg.world_size(), 100e9));
  cluster.install_faults(
      sim::FaultPlan{}.fail_stop(cfg.world_size() - 1, kKillStep));
  col::Backend backend(cluster);

  engine::ElasticOptions opts = engine::ElasticOptions::resolve(cfg);
  opts.rows = kRows;
  opts.hidden = kHidden;
  engine::ElasticCoordinator coord(backend, cfg, opts);

  out.elastic_losses.assign(
      static_cast<std::size_t>(cfg.world_size()),
      std::vector<float>(static_cast<std::size_t>(kTotalSteps), -1.0f));
  std::mutex capture_mu;
  std::string restore_bytes;

  cluster.run([&](int g) {
    coord.run(g, [&](core::ParallelContext& ctx, int ep) {
      tp::Env env{&ctx, g};
      ElasticModel model(env, kSeed);
      optim::Adam opt(model.params(), {});
      std::int64_t start = 0;
      auto [cstep, cbytes] = coord.latest_checkpoint();
      if (cstep >= 0) {
        std::istringstream is(cbytes);
        start = engine::deserialize_checkpoint(env, model.module(), opt, is);
        coord.note_resharded(g, static_cast<std::int64_t>(cbytes.size()));
        if (ep > 0 && ctx.virtual_rank(g) == 0) {
          std::lock_guard<std::mutex> lk(capture_mu);
          out.restore_step = start;
          restore_bytes = cbytes;
        }
      }
      for (std::int64_t s = start; s < kTotalSteps; ++s) {
        coord.poll(g);
        cluster.fault_injector()->on_step(g, s, cluster.device(g).clock());
        out.elastic_losses[static_cast<std::size_t>(g)]
                          [static_cast<std::size_t>(s)] =
            model.train_step(s, opt);
        std::ostringstream os;
        engine::serialize_checkpoint(env, model.module(), opt, s + 1, os);
        coord.store_checkpoint(s + 1, os.str());
      }
      if (ep > 0) coord.note_replayed(g, kTotalSteps - start);
    });
  });

  out.final_config = coord.context().config();
  out.recoveries = coord.recoveries();
  if (out.restore_step < 0) return out;  // recovery never happened

  // Cold restart: a fresh cluster exactly the final layout's size, identity
  // rank mapping, restored from the same serialized bytes.
  sim::Cluster cold(sim::Topology::uniform(out.final_config.world_size(), 100e9));
  col::Backend cold_backend(cold);
  core::ParallelContext cold_ctx(cold_backend, out.final_config);
  out.cold_losses.assign(
      static_cast<std::size_t>(out.final_config.world_size()),
      std::vector<float>(static_cast<std::size_t>(kTotalSteps), -2.0f));
  cold.run([&](int g) {
    tp::Env env{&cold_ctx, g};
    ElasticModel model(env, kSeed);
    optim::Adam opt(model.params(), {});
    std::istringstream is(restore_bytes);
    const std::int64_t start =
        engine::deserialize_checkpoint(env, model.module(), opt, is);
    for (std::int64_t s = start; s < kTotalSteps; ++s) {
      out.cold_losses[static_cast<std::size_t>(g)]
                     [static_cast<std::size_t>(s)] = model.train_step(s, opt);
    }
  });
  return out;
}

/// Bitwise float equality (the acceptance bar: not approximate).
bool bit_equal(float a, float b) { return std::memcmp(&a, &b, sizeof a) == 0; }

void expect_bit_identical_resume(const ScenarioResult& r) {
  ASSERT_EQ(r.recoveries, 1);
  ASSERT_GE(r.restore_step, 1);
  ASSERT_LE(r.restore_step, kKillStep);
  const int w = r.final_config.world_size();
  for (int g = 0; g < w; ++g) {
    for (std::int64_t s = r.restore_step; s < kTotalSteps; ++s) {
      const float e = r.elastic_losses[static_cast<std::size_t>(g)]
                                      [static_cast<std::size_t>(s)];
      const float c = r.cold_losses[static_cast<std::size_t>(g)]
                                   [static_cast<std::size_t>(s)];
      EXPECT_TRUE(bit_equal(e, c))
          << "rank " << g << " step " << s << ": elastic " << e << " vs cold "
          << c;
      // losses agree across member ranks too (gathered y is identical)
      EXPECT_TRUE(bit_equal(e, r.elastic_losses[0][static_cast<std::size_t>(s)]));
    }
  }
}

}  // namespace

// ---- fail-stop x layout matrix ----------------------------------------------

TEST(Elastic, FailStop1DContinuesBitIdentical) {
  auto r = run_elastic_scenario(core::TpMode::k1d, 4, 1);
  expect_bit_identical_resume(r);
  // 3 survivors: hidden 48 % 3 == 0, so the planner keeps all of them on 1D.
  EXPECT_EQ(r.final_config.tensor_mode, core::TpMode::k1d);
  EXPECT_EQ(r.final_config.tensor_parallel_size, 3);
}

TEST(Elastic, FailStop2DContinuesBitIdentical) {
  auto r = run_elastic_scenario(core::TpMode::k2d, 4, 1);
  expect_bit_identical_resume(r);
  // No square fits 3 ranks: the 2D grid degrades to a 1D group of 3.
  EXPECT_EQ(r.final_config.tensor_mode, core::TpMode::k1d);
  EXPECT_EQ(r.final_config.tensor_parallel_size, 3);
}

TEST(Elastic, FailStop2p5DContinuesBitIdentical) {
  auto r = run_elastic_scenario(core::TpMode::k2p5d, 8, 2);
  expect_bit_identical_resume(r);
  // 7 survivors, 48 % 7 != 0: the best use of the wreckage is 1D x 6.
  EXPECT_EQ(r.final_config.tensor_mode, core::TpMode::k1d);
  EXPECT_EQ(r.final_config.tensor_parallel_size, 6);
  EXPECT_EQ(r.final_config.world_size(), 6);  // one survivor dropped
}

TEST(Elastic, FailStop3DContinuesBitIdentical) {
  auto r = run_elastic_scenario(core::TpMode::k3d, 8, 1);
  expect_bit_identical_resume(r);
  EXPECT_EQ(r.final_config.tensor_mode, core::TpMode::k1d);
  EXPECT_EQ(r.final_config.tensor_parallel_size, 6);
}

// The same drill under the fiber backend and the bf16 wire: recovery and the
// bit-identity bar are backend- and wire-dtype-independent (elastic resume
// and cold restart share one layout, so they share one rounding story).
TEST(Elastic, MatrixTasksBackend) {
  EnvGuard backend("CA_SIM_BACKEND", "tasks");
  auto r = run_elastic_scenario(core::TpMode::k2d, 4, 1);
  expect_bit_identical_resume(r);
}

TEST(Elastic, MatrixBf16Wire) {
  EnvGuard wire("CA_COMM_DTYPE", "bf16");
  auto r = run_elastic_scenario(core::TpMode::k2d, 4, 1);
  expect_bit_identical_resume(r);
}

TEST(Elastic, MatrixTasksBackendBf16Wire) {
  EnvGuard backend("CA_SIM_BACKEND", "tasks");
  EnvGuard wire("CA_COMM_DTYPE", "bf16");
  auto r = run_elastic_scenario(core::TpMode::k1d, 4, 1);
  expect_bit_identical_resume(r);
}

// ---- give-up and disabled paths ---------------------------------------------

TEST(Elastic, MinWorldFloorRethrowsOriginal) {
  // With the floor at the full world, losing a rank must NOT be survivable:
  // recovery gives up and the root-cause DeviceFailure surfaces as before.
  EnvGuard floor("CA_ELASTIC_MIN_WORLD", "4");
  EXPECT_THROW(run_elastic_scenario(core::TpMode::k2d, 4, 1),
               sim::DeviceFailure);
}

TEST(Elastic, DisabledKeepsAbortSemantics) {
  EnvGuard off("CA_ELASTIC", "off");
  EXPECT_THROW(run_elastic_scenario(core::TpMode::k2d, 4, 1),
               sim::DeviceFailure);
}

// ---- survivor-layout planner ------------------------------------------------

TEST(Elastic, SurvivorLayoutPlannerDeterministic) {
  const double flops = 1e12, bw = 100e9;
  auto a = autop::best_survivor_layout(3, kRows, kHidden, 1, flops, bw);
  auto b = autop::best_survivor_layout(3, kRows, kHidden, 1, flops, bw);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.tensor, b.tensor);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.mode, core::TpMode::k1d);
  EXPECT_EQ(a.tensor, 3);

  // 48 % 7 != 0: six of seven survivors beat any smaller grid.
  auto c = autop::best_survivor_layout(7, kRows, kHidden, 1, flops, bw);
  ASSERT_TRUE(c.feasible);
  EXPECT_EQ(c.mode, core::TpMode::k1d);
  EXPECT_EQ(c.tensor, 6);
  EXPECT_EQ(c.ranks_used, 6);

  // With data parallelism allowed, all seven get used: dp * tp = 7 only as
  // 1 * 7 (infeasible) — but 24 rows split across dp and the planner still
  // maximizes ranks_used first.
  auto d = autop::best_survivor_layout(8, kRows, kHidden, 2, flops, bw);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.ranks_used, 8);

  // A single survivor degenerates to serial execution.
  auto e = autop::best_survivor_layout(1, kRows, kHidden, 1, flops, bw);
  ASSERT_TRUE(e.feasible);
  EXPECT_EQ(e.mode, core::TpMode::kNone);
  EXPECT_EQ(e.ranks_used, 1);
}

// ---- observability ----------------------------------------------------------

TEST(Elastic, MetricsAndSpansEmitted) {
  core::Config cfg;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k2d;
  cfg.elastic = "on";
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  cluster.install_faults(sim::FaultPlan{}.fail_stop(3, kKillStep));
  auto& metrics = cluster.enable_metrics();
  auto& tracer = cluster.enable_tracing();
  col::Backend backend(cluster);
  engine::ElasticOptions opts = engine::ElasticOptions::resolve(cfg);
  opts.rows = kRows;
  opts.hidden = kHidden;
  engine::ElasticCoordinator coord(backend, cfg, opts);

  cluster.run([&](int g) {
    coord.run(g, [&](core::ParallelContext& ctx, int ep) {
      tp::Env env{&ctx, g};
      ElasticModel model(env, kSeed);
      optim::Adam opt(model.params(), {});
      std::int64_t start = 0;
      auto [cstep, cbytes] = coord.latest_checkpoint();
      if (cstep >= 0) {
        std::istringstream is(cbytes);
        start = engine::deserialize_checkpoint(env, model.module(), opt, is);
        coord.note_resharded(g, static_cast<std::int64_t>(cbytes.size()));
      }
      for (std::int64_t s = start; s < kTotalSteps; ++s) {
        coord.poll(g);
        cluster.fault_injector()->on_step(g, s, cluster.device(g).clock());
        model.train_step(s, opt);
        std::ostringstream os;
        engine::serialize_checkpoint(env, model.module(), opt, s + 1, os);
        coord.store_checkpoint(s + 1, os.str());
      }
      if (ep > 0) coord.note_replayed(g, kTotalSteps - start);
    });
  });

  const auto counters = metrics.merged_counters();
  ASSERT_TRUE(counters.count("elastic.recoveries"));
  EXPECT_EQ(counters.at("elastic.recoveries"), 3);  // one per survivor
  ASSERT_TRUE(counters.count("elastic.reshard_bytes"));
  EXPECT_GT(counters.at("elastic.reshard_bytes"), 0);
  bool mttr_seen = false, replay_seen = false;
  for (int r = 0; r < 4; ++r) {
    for (const auto& [name, gauge] : metrics.rank(r).gauges()) {
      if (name == "elastic.mttr_s" && gauge.value > 0.0) mttr_seen = true;
      if (name == "elastic.replayed_steps" && gauge.value > 0.0) {
        replay_seen = true;
      }
    }
  }
  EXPECT_TRUE(mttr_seen);
  EXPECT_TRUE(replay_seen);

  std::set<std::string> span_names;
  for (int r = 0; r < 4; ++r) {
    for (const auto& ev : tracer.rank(r).events()) {
      if (ev.cat == obs::Category::kFault) span_names.insert(ev.name);
    }
  }
  EXPECT_TRUE(span_names.count("elastic.consensus"));
  EXPECT_TRUE(span_names.count("elastic.rebuild"));
  EXPECT_TRUE(span_names.count("elastic.reshard"));
  EXPECT_TRUE(span_names.count("elastic.replay"));
}

// ---- checkpoint re-layout ---------------------------------------------------

TEST(Elastic, CheckpointRelayout2Dto1D) {
  // Two Adam steps on a 2D grid, serialize, restore onto a 1D pair, and
  // re-serialize: the full-form checkpoint must round-trip byte-identically
  // through the layout change (params AND moments).
  std::string bytes_2d;
  {
    core::Config cfg;
    cfg.tensor_parallel_size = 4;
    cfg.tensor_mode = core::TpMode::k2d;
    sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
    col::Backend backend(cluster);
    core::ParallelContext ctx(backend, cfg);
    std::mutex mu;
    cluster.run([&](int g) {
      tp::Env env{&ctx, g};
      ElasticModel model(env, kSeed);
      optim::Adam opt(model.params(), {});
      for (std::int64_t s = 0; s < 2; ++s) model.train_step(s, opt);
      std::ostringstream os;
      engine::serialize_checkpoint(env, model.module(), opt, 2, os);
      if (g == 0) {
        std::lock_guard<std::mutex> lk(mu);
        bytes_2d = os.str();
      }
    });
  }
  ASSERT_FALSE(bytes_2d.empty());

  std::vector<std::string> bytes_1d(2);
  {
    core::Config cfg;
    cfg.tensor_parallel_size = 2;
    cfg.tensor_mode = core::TpMode::k1d;
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    col::Backend backend(cluster);
    core::ParallelContext ctx(backend, cfg);
    cluster.run([&](int g) {
      tp::Env env{&ctx, g};
      ElasticModel model(env, kSeed + 1);  // different seed: restore must win
      optim::Adam opt(model.params(), {});
      std::istringstream is(bytes_2d);
      const std::int64_t step =
          engine::deserialize_checkpoint(env, model.module(), opt, is);
      EXPECT_EQ(step, 2);
      std::ostringstream os;
      engine::serialize_checkpoint(env, model.module(), opt, 2, os);
      bytes_1d[static_cast<std::size_t>(g)] = os.str();
    });
  }
  EXPECT_EQ(bytes_1d[0], bytes_2d);
  EXPECT_EQ(bytes_1d[1], bytes_2d);  // identical on every member
}

TEST(Elastic, ShardSpecRoundTrip) {
  // Pure local math: slice every block of a 2x3 grid out of a full matrix
  // and scatter-add them back — exact reassembly, no collectives involved.
  const std::int64_t rows = 6, cols = 9;
  auto full = t::randn(t::Shape{rows, cols}, 5);
  std::vector<float> rebuilt(static_cast<std::size_t>(rows * cols), 0.0f);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      nn::ShardSpec spec{rows, cols, 2, r, 3, c, 1, true};
      std::vector<float> local(
          static_cast<std::size_t>((rows / 2) * (cols / 3)));
      tp::slice_from_full(spec, full.data(), local);
      tp::add_to_full(spec, local, rebuilt);
    }
  }
  EXPECT_EQ(std::memcmp(rebuilt.data(), full.data().data(),
                        rebuilt.size() * sizeof(float)),
            0);

  // A redundant replica (primary=false) must not feed the gather: add only
  // the primary copy and the reassembly still matches.
  nn::ShardSpec replicated{rows, 0, 1, 0, 1, 0, 1, false};
  EXPECT_FALSE(replicated.partitioned());
}
