// Half-precision wire tests: the f16/bf16 conversion kernels (exhaustive
// bit-pattern round trips, round-to-nearest-even ties, subnormals, infs, NaN
// preservation), the half-wire collective contract (rounded-oracle equality,
// cross-algorithm bit-identity, halved wire bytes, selector element floor),
// the engine/ZeRO integration (bucketed DP byte halving, NaN-consensus skip
// over a bf16 wire, bf16 checkpoint resume), and the fused softmax/LayerNorm
// kernels against their naive serial oracles.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "collective/backend.hpp"
#include "collective/cost.hpp"
#include "core/context.hpp"
#include "engine/engine.hpp"
#include "nn/layers.hpp"
#include "optim/optimizer.hpp"
#include "tensor/convert.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "zero/zero_optimizer.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace col = ca::collective;
namespace core = ca::core;
namespace sim = ca::sim;
namespace tp = ca::tp;
namespace zero = ca::zero;
namespace engine = ca::engine;

namespace {

struct World {
  explicit World(core::Config cfg, double bw = 100e9)
      : cluster(sim::Topology::uniform(cfg.world_size(), bw)),
        backend(cluster),
        ctx(backend, cfg) {
    // Every test here passes its wire dtype explicitly (Group argument,
    // Engine::Options, ZeroOptimizer ctor), so pin the context-resolved
    // default: the fp32 control runs must stay fp32 under the
    // CA_COMM_DTYPE=bf16 CI sweep.
    ctx.set_comm_dtype(t::Dtype::kF32);
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

std::vector<float> random_floats(std::int64_t n, std::uint32_t seed,
                                 float lo = -1.0f, float hi = 1.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

}  // namespace

// ---- conversion kernels ------------------------------------------------------------

TEST(Halfwire, Bf16EveryBitPatternRoundTripsExactly) {
  // Widening is exact, so every non-NaN bf16 pattern — subnormals, ±0, ±inf
  // included — must survive fp32 -> bf16 unchanged; NaNs must stay NaN.
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float f = t::bf16_to_float(t::BFloat16{bits});
    if (std::isnan(f)) {
      ASSERT_TRUE(std::isnan(t::bf16_round_trip(f))) << "pattern " << b;
    } else {
      ASSERT_EQ(t::float_to_bf16(f).bits, bits) << "pattern " << b;
    }
  }
}

TEST(Halfwire, F16EveryBitPatternRoundTripsExactly) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float f = t::half_to_float(t::Half{bits});
    if (std::isnan(f)) {
      ASSERT_TRUE(std::isnan(t::fp16_round_trip(f))) << "pattern " << b;
    } else {
      ASSERT_EQ(t::float_to_half(f).bits, bits) << "pattern " << b;
    }
  }
}

TEST(Halfwire, RoundsHalfwayCasesToNearestEven) {
  // bf16 keeps 7 mantissa bits: 1 + 2^-8 is exactly halfway between 1 and
  // 1 + 2^-7 and must round down to the even mantissa (1.0); 1 + 3*2^-8 is
  // halfway between odd 1 + 2^-7 and even 1 + 2^-6 and must round up.
  EXPECT_EQ(t::bf16_round_trip(1.0f + 0x1p-8f), 1.0f);
  EXPECT_EQ(t::bf16_round_trip(1.0f + 0x3p-8f), 1.0f + 0x1p-6f);
  // f16 keeps 10 mantissa bits: same ties one scale down.
  EXPECT_EQ(t::fp16_round_trip(1.0f + 0x1p-11f), 1.0f);
  EXPECT_EQ(t::fp16_round_trip(1.0f + 0x3p-11f), 1.0f + 0x1p-9f);
  // Non-tie residues round to nearest regardless of parity.
  EXPECT_EQ(t::bf16_round_trip(1.0f + 0x1.8p-8f), 1.0f + 0x1p-7f);
  EXPECT_EQ(t::fp16_round_trip(1.0f + 0x1.8p-11f), 1.0f + 0x1p-10f);
}

TEST(Halfwire, SubnormalsSaturationAndInfs) {
  // Smallest f16 subnormal is exactly representable; a quarter of it (below
  // the rounding halfway point) flushes to zero with the sign kept.
  EXPECT_EQ(t::fp16_round_trip(0x1p-24f), 0x1p-24f);
  EXPECT_EQ(t::fp16_round_trip(0x1p-26f), 0.0f);
  EXPECT_TRUE(std::signbit(t::fp16_round_trip(-0x1p-26f)));
  // f16 max is 65504; 65520 is halfway to the next step and rounds to inf.
  EXPECT_EQ(t::fp16_round_trip(65504.0f), 65504.0f);
  EXPECT_EQ(t::fp16_round_trip(65520.0f),
            std::numeric_limits<float>::infinity());
  // bf16 covers the fp32 exponent range: its smallest subnormal (2^-133) is
  // exact, and FLT_MAX rounds up past the bf16 max into inf.
  EXPECT_EQ(t::bf16_round_trip(0x1p-133f), 0x1p-133f);
  EXPECT_EQ(t::bf16_round_trip(std::numeric_limits<float>::max()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(t::bf16_round_trip(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(t::bf16_round_trip(-std::numeric_limits<float>::infinity()),
            -std::numeric_limits<float>::infinity());
}

TEST(Halfwire, NanSurvivesEveryWireFormat) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(t::bf16_round_trip(nan)));
  EXPECT_TRUE(std::isnan(t::fp16_round_trip(nan)));
  // A signaling-NaN payload must quiet, not round up into infinity.
  const float snan = std::numeric_limits<float>::signaling_NaN();
  EXPECT_TRUE(std::isnan(t::bf16_round_trip(snan)));
  EXPECT_TRUE(std::isnan(t::fp16_round_trip(snan)));

  // The bulk dispatch kernel: kF32 is the identity, halves round-trip.
  const std::vector<float> src{1.0f, nan, 0x1p-26f, 65520.0f};
  std::vector<float> dst(src.size());
  t::wire_round_trip(t::Dtype::kF32, src.data(), dst.data(), 4);
  EXPECT_EQ(dst[0], src[0]);
  EXPECT_TRUE(std::isnan(dst[1]));
  EXPECT_EQ(dst[2], src[2]);
  EXPECT_EQ(dst[3], src[3]);
  t::wire_round_trip(t::Dtype::kBF16, src.data(), dst.data(), 4);
  EXPECT_TRUE(std::isnan(dst[1]));
  EXPECT_EQ(dst[0], 1.0f);
  t::wire_round_trip(t::Dtype::kF16, src.data(), dst.data(), 4);
  EXPECT_TRUE(std::isnan(dst[1]));
  EXPECT_EQ(dst[2], 0.0f);
  EXPECT_EQ(dst[3], std::numeric_limits<float>::infinity());
}

// ---- half-wire collectives ---------------------------------------------------------

TEST(Halfwire, Bf16AllReduceMatchesRoundedOracle) {
  // Contract: inputs are rounded through the wire on pack, the fold runs in
  // fp32 ascending member order, scale fuses into copy-out, and the result
  // is rounded through the wire once. Bit-exact against that oracle.
  const int n = 4;
  const std::int64_t elems = 257;  // odd, to exercise chunk tails
  const float scale = 0.25f;
  core::Config cfg;
  cfg.data_parallel_size = n;
  World w(cfg);
  std::vector<std::vector<float>> bufs;
  for (int r = 0; r < n; ++r)
    bufs.push_back(random_floats(elems, 100 + static_cast<std::uint32_t>(r)));

  std::vector<float> want(static_cast<std::size_t>(elems));
  for (std::int64_t i = 0; i < elems; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n; ++r)
      acc += t::bf16_round_trip(bufs[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(i)]);
    want[static_cast<std::size_t>(i)] = t::bf16_round_trip(acc * scale);
  }

  w.cluster.run([&](int g) {
    w.backend.world().all_reduce(g, bufs[static_cast<std::size_t>(g)], scale,
                                 t::Dtype::kBF16);
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[static_cast<std::size_t>(r)], want);
}

TEST(Halfwire, F16AllReduceMatchesRoundedOracle) {
  const int n = 3;
  const std::int64_t elems = 130;
  core::Config cfg;
  cfg.data_parallel_size = n;
  World w(cfg);
  std::vector<std::vector<float>> bufs;
  for (int r = 0; r < n; ++r)
    bufs.push_back(random_floats(elems, 200 + static_cast<std::uint32_t>(r)));

  std::vector<float> want(static_cast<std::size_t>(elems));
  for (std::int64_t i = 0; i < elems; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n; ++r)
      acc += t::fp16_round_trip(bufs[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(i)]);
    want[static_cast<std::size_t>(i)] = t::fp16_round_trip(acc);
  }

  w.cluster.run([&](int g) {
    w.backend.world().all_reduce(g, bufs[static_cast<std::size_t>(g)], 1.0f,
                                 t::Dtype::kF16);
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(bufs[static_cast<std::size_t>(r)], want);
}

TEST(Halfwire, Bf16ResultBitIdenticalAcrossAlgorithms) {
  // The wire rounding happens outside the schedule engine (pack on publish,
  // one rounding on copy-out), so forcing any algorithm family must produce
  // the same bits — the half-wire extension of the DESIGN.md section 6
  // canonical-fold guarantee.
  const int n = 8;
  const std::int64_t elems = 513;
  std::vector<int> ranks(n);
  for (int r = 0; r < n; ++r) ranks[static_cast<std::size_t>(r)] = r;

  auto run = [&](col::Algo algo) {
    sim::Cluster cluster(sim::Topology::uniform(n, 100e9));
    col::AlgoPolicy policy{algo};
    col::Group g(cluster, ranks, "g", &policy);
    std::vector<std::vector<float>> bufs;
    for (int r = 0; r < n; ++r)
      bufs.push_back(random_floats(elems, 300 + static_cast<std::uint32_t>(r),
                                   -4.0f, 4.0f));
    cluster.run([&](int rank) {
      g.all_reduce(rank, bufs[static_cast<std::size_t>(rank)], 1.0f,
                   t::Dtype::kBF16);
    });
    return bufs;
  };

  const auto want = run(col::Algo::kChunked);
  for (col::Algo algo : {col::Algo::kRing, col::Algo::kHierarchical,
                         col::Algo::kSingleRoot}) {
    const auto got = run(algo);
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                want[static_cast<std::size_t>(r)])
          << "algo " << col::algo_name(algo) << " rank " << r;
  }
}

TEST(Halfwire, HalfWireHalvesAllReduceBytes) {
  // Same element count, same algorithm (both payloads sit in the chunked
  // window): the modeled per-rank interconnect traffic must halve exactly.
  const int n = 4;
  const std::int64_t elems = 4096;
  auto bytes_with = [&](t::Dtype wire) {
    core::Config cfg;
    cfg.data_parallel_size = n;
    World w(cfg);
    std::vector<std::vector<float>> bufs(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(elems), 1.0f));
    w.cluster.run([&](int g) {
      w.backend.world().all_reduce(g, bufs[static_cast<std::size_t>(g)], 1.0f,
                                   wire);
    });
    return w.cluster.device(0).bytes_sent();
  };
  const auto f32 = bytes_with(t::Dtype::kF32);
  const auto bf16 = bytes_with(t::Dtype::kBF16);
  const auto f16 = bytes_with(t::Dtype::kF16);
  EXPECT_GT(bf16, 0);
  EXPECT_EQ(f32, 2 * bf16);
  EXPECT_EQ(bf16, f16);
}

TEST(Halfwire, SelectorSmallMessageFloorScalesWithElementWidth) {
  // Regression for the hardcoded 4-byte element size: the single-root floor
  // guards the n < P degenerate case (empty ownership chunks), so it must be
  // an *element* floor. 599 elements on 600 ranks is small at any width;
  // 700 elements is not — even though 700 bf16 elements (1400 bytes) would
  // sit under the old 4-byte floor of 2400 bytes.
  const int n = 600;
  core::Config cfg;
  cfg.data_parallel_size = n;
  World w(cfg);
  auto& world = w.backend.world();
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 599 * 2, 2),
            col::Algo::kSingleRoot);
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 700 * 2, 2),
            col::Algo::kChunked);
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 599 * 4, 4),
            col::Algo::kSingleRoot);
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 700 * 4, 4),
            col::Algo::kChunked);
}

// ---- engine / ZeRO integration -----------------------------------------------------

TEST(Halfwire, BucketedDpBf16HalvesGradSyncBytes) {
  // Pure data parallelism: the only interconnect traffic in a step is the
  // bucketed gradient all-reduce, so total bytes must halve on a bf16 wire
  // (the bucket boundaries themselves are fp32-sized, hence identical).
  auto bytes_with = [&](t::Dtype wire) {
    core::Config cfg;
    cfg.data_parallel_size = 2;
    World w(cfg);
    auto x = t::randn(t::Shape{8, 64}, 41);
    std::vector<std::int64_t> labels{0, 1, 2, 3, 4, 5, 6, 7};
    w.cluster.run([&](int g) {
      nn::Linear model("m", 64, 64, 42);
      engine::Engine::Options opts;
      opts.comm_dtype = wire;
      auto eng = engine::initialize(
          w.env(g), model,
          std::make_unique<ca::optim::Adam>(model.parameters(),
                                            ca::optim::Adam::Hyper{}),
          opts);
      eng->zero_grad();
      auto out = eng->forward(x);
      eng->criterion(out, labels);
      eng->backward();
      eng->step();
    });
    return w.cluster.device(0).bytes_sent();
  };
  const auto f32 = bytes_with(t::Dtype::kF32);
  const auto bf16 = bytes_with(t::Dtype::kBF16);
  EXPECT_GT(bf16, 0);
  EXPECT_EQ(f32, 2 * bf16);
}

TEST(Halfwire, NanConsensusSkipFiresOverBf16Wire) {
  // One rank's NaN gradient must poison the *reduced* gradient on every rank
  // — through the pack rounding, the fp32 fold, and the copy-out rounding —
  // so the guard skips the step symmetrically. This is why the conversions
  // are NaN-preserving.
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  auto x = t::randn(t::Shape{4, 6}, 51);
  std::vector<std::int64_t> labels{0, 1, 2, 0};
  std::array<std::int64_t, 2> skipped{};
  std::vector<t::Tensor> before(2), after(2);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 6, 3, 52);
    engine::Engine::Options opts;
    opts.grad_sync = engine::Engine::Options::GradSync::kSerial;
    opts.nan_guard = true;
    opts.comm_dtype = t::Dtype::kBF16;
    auto eng = engine::initialize(
        w.env(g), model,
        std::make_unique<ca::optim::Adam>(model.parameters(),
                                          ca::optim::Adam::Hyper{}),
        opts);
    before[static_cast<std::size_t>(g)] = model.weight().value.clone();
    eng->zero_grad();
    auto out = eng->forward(x);
    eng->criterion(out, labels);
    eng->backward();
    if (g == 0)
      model.weight().grad[0] = std::numeric_limits<float>::quiet_NaN();
    eng->step();
    skipped[static_cast<std::size_t>(g)] = eng->skipped_steps();
    after[static_cast<std::size_t>(g)] = model.weight().value.clone();
  });
  EXPECT_EQ(skipped, (std::array<std::int64_t, 2>{1, 1}));
  for (int g = 0; g < 2; ++g) {
    EXPECT_EQ(t::max_diff(after[static_cast<std::size_t>(g)],
                          before[static_cast<std::size_t>(g)]),
              0.0f)
        << "rank " << g << " stepped through a NaN";
  }
}

TEST(Halfwire, ZeroBf16CheckpointResumesBitIdentically) {
  // ZeRO over a bf16 wire: checkpoint traffic stays exact fp32, so a
  // save/restore mid-run rejoins the uninterrupted bf16 trajectory exactly.
  const int p = 2;
  auto x = t::randn(t::Shape{6, 4}, 61);
  std::vector<std::int64_t> labels{0, 1, 2, 0, 1, 2};
  auto train_steps = [&](zero::ZeroOptimizer& opt, nn::Linear& model, int from,
                         int to) {
    for (int s = from; s < to; ++s) {
      opt.gather_params();
      opt.zero_grad();
      auto logits = model.forward(x);
      t::Tensor dl;
      t::cross_entropy(logits, labels, dl);
      model.backward(dl);
      opt.step();
    }
  };

  // uninterrupted: 4 steps
  std::vector<t::Tensor> want(p);
  {
    core::Config cfg;
    cfg.data_parallel_size = p;
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 4, 3, 62);
      zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g),
                              model.parameters(), {}, /*stage=*/2,
                              /*average_grads=*/true, t::Dtype::kBF16);
      train_steps(opt, model, 0, 4);
      opt.gather_params();
      want[static_cast<std::size_t>(g)] = model.weight().value.clone();
    });
  }
  // interrupted: 2 steps, checkpoint, fresh world, restore, 2 more
  std::vector<std::string> blobs(p);
  {
    core::Config cfg;
    cfg.data_parallel_size = p;
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 4, 3, 62);
      zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g),
                              model.parameters(), {}, 2, true,
                              t::Dtype::kBF16);
      train_steps(opt, model, 0, 2);
      std::ostringstream os;
      opt.save_state(os);
      blobs[static_cast<std::size_t>(g)] = os.str();
    });
  }
  EXPECT_EQ(blobs[0], blobs[1]);  // world-size-agnostic full form
  std::vector<t::Tensor> got(p);
  {
    core::Config cfg;
    cfg.data_parallel_size = p;
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 4, 3, 62);
      zero::ZeroOptimizer opt(w.env(g), w.ctx.data_group(g),
                              model.parameters(), {}, 2, true,
                              t::Dtype::kBF16);
      std::istringstream is(blobs[0]);
      opt.load_state(is);
      train_steps(opt, model, 2, 4);
      opt.gather_params();
      got[static_cast<std::size_t>(g)] = model.weight().value.clone();
    });
  }
  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(t::max_diff(got[static_cast<std::size_t>(g)],
                          want[static_cast<std::size_t>(g)]),
              0.0f)
        << "rank " << g;
  }
}

// ---- fused kernels vs naive oracles ------------------------------------------------

TEST(Halfwire, FusedScaledSoftmaxMatchesNaiveOracle) {
  const float scale = 0.125f;
  auto x = t::randn(t::Shape{33, 77}, 71, 0.0f, 3.0f);
  auto fused = t::softmax_lastdim_scaled(x, scale);
  auto naive = t::naive_softmax_lastdim(t::mul_scalar(x, scale));
  EXPECT_LT(t::max_diff(fused, naive), 1e-6f);
  // Rows still sum to one.
  auto pf = fused.data();
  for (std::int64_t r = 0; r < 33; ++r) {
    float s = 0.0f;
    for (std::int64_t c = 0; c < 77; ++c) s += pf[r * 77 + c];
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  // Unscaled entry point is the scale == 1 special case.
  EXPECT_LT(t::max_diff(t::softmax_lastdim(x), t::naive_softmax_lastdim(x)),
            1e-6f);

  auto dy = t::randn(t::Shape{33, 77}, 72);
  auto dx_fused = t::softmax_backward_scaled(fused, dy, scale);
  auto dx_naive = t::mul_scalar(t::naive_softmax_backward(fused, dy), scale);
  EXPECT_LT(t::max_diff(dx_fused, dx_naive), 1e-6f);
  EXPECT_LT(t::max_diff(t::softmax_backward(fused, dy),
                        t::naive_softmax_backward(fused, dy)),
            1e-6f);
}

TEST(Halfwire, FusedLayerNormMatchesNaiveOracle) {
  const std::int64_t rows = 37, h = 129;
  const float eps = 1e-5f;
  auto x = t::randn(t::Shape{rows, h}, 81, 0.5f, 2.0f);
  auto gamma = t::randn(t::Shape{h}, 82, 1.0f, 0.2f);
  auto beta = t::randn(t::Shape{h}, 83, 0.0f, 0.2f);

  t::Tensor mean_f, rstd_f, mean_n, rstd_n;
  auto y_fused = t::layernorm_forward(x, gamma, beta, eps, mean_f, rstd_f);
  auto y_naive = t::naive_layernorm_forward(x, gamma, beta, eps, mean_n,
                                            rstd_n);
  EXPECT_LT(t::max_diff(y_fused, y_naive), 1e-5f);
  EXPECT_LT(t::max_diff(mean_f, mean_n), 1e-6f);
  EXPECT_LT(t::max_diff(rstd_f, rstd_n), 1e-4f);

  auto dy = t::randn(t::Shape{rows, h}, 84);
  t::Tensor dg_f(t::Shape{h}, 0.0f), db_f(t::Shape{h}, 0.0f);
  t::Tensor dg_n(t::Shape{h}, 0.0f), db_n(t::Shape{h}, 0.0f);
  auto dx_fused =
      t::layernorm_backward(x, dy, gamma, mean_f, rstd_f, dg_f, db_f);
  auto dx_naive =
      t::naive_layernorm_backward(x, dy, gamma, mean_n, rstd_n, dg_n, db_n);
  EXPECT_LT(t::max_diff(dx_fused, dx_naive), 1e-5f);
  EXPECT_LT(t::max_diff(dg_f, dg_n), 1e-4f);
  EXPECT_LT(t::max_diff(db_f, db_n), 1e-4f);
}
