// Unit tests for the cluster simulator: topologies, memory tracking, logical
// clocks, and the SPMD launcher.

#include <gtest/gtest.h>

#include <atomic>

#include "sim/cluster.hpp"
#include "sim/memory.hpp"
#include "sim/topology.hpp"

namespace sim = ca::sim;

TEST(Topology, SystemIFullyConnected) {
  auto topo = sim::Topology::system_i();
  EXPECT_EQ(topo.num_devices(), 8);
  EXPECT_EQ(topo.num_nodes(), 1);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      if (i != j) EXPECT_DOUBLE_EQ(topo.bandwidth(i, j), 184.0e9);
}

TEST(Topology, SystemIIAdjacentPairsOnly) {
  auto topo = sim::Topology::system_ii();
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 1), 184.0e9);  // NVLink pair
  EXPECT_DOUBLE_EQ(topo.bandwidth(2, 3), 184.0e9);
  EXPECT_DOUBLE_EQ(topo.bandwidth(1, 2), 15.0e9);  // PCIe
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 7), 15.0e9);
}

TEST(Topology, SystemIIINodeStructure) {
  auto topo = sim::Topology::system_iii();
  EXPECT_EQ(topo.num_devices(), 64);
  EXPECT_EQ(topo.gpus_per_node(), 4);
  EXPECT_EQ(topo.num_nodes(), 16);
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 3), 150.0e9);  // same node
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 4), 25.0e9);   // cross node (IB HDR)
}

TEST(Topology, SystemIVSingleGpuNodes) {
  auto topo = sim::Topology::system_iv();
  EXPECT_EQ(topo.num_devices(), 64);
  EXPECT_EQ(topo.gpus_per_node(), 1);
  EXPECT_EQ(topo.gpu().name, "P100-16GB");
  EXPECT_EQ(topo.gpu().memory_bytes, 16 * sim::kGiB);
}

TEST(Topology, RingBottleneckFindsSlowestLink) {
  auto topo = sim::Topology::system_ii();
  const std::vector<int> nvlink_pair{0, 1};
  EXPECT_DOUBLE_EQ(topo.ring_bottleneck(nvlink_pair), 184.0e9);
  const std::vector<int> four{0, 1, 2, 3};  // 1-2 and 3-0 are PCIe
  EXPECT_DOUBLE_EQ(topo.ring_bottleneck(four), 15.0e9);
}

TEST(Memory, AllocFreePeak) {
  sim::MemoryTracker m("t", 1000);
  m.alloc(400);
  m.alloc(300);
  EXPECT_EQ(m.current(), 700);
  EXPECT_EQ(m.peak(), 700);
  m.free(500);
  EXPECT_EQ(m.current(), 200);
  EXPECT_EQ(m.peak(), 700);
  m.alloc(100);
  EXPECT_EQ(m.peak(), 700);  // peak unchanged
  EXPECT_EQ(m.available(), 700);
}

TEST(Memory, OomThrowsWithDiagnostics) {
  sim::MemoryTracker m("gpu0", 1000);
  m.alloc(900);
  try {
    m.alloc(200);
    FAIL() << "expected OomError";
  } catch (const sim::OomError& e) {
    EXPECT_EQ(e.requested(), 200);
    EXPECT_EQ(e.in_use(), 900);
    EXPECT_EQ(e.capacity(), 1000);
  }
  EXPECT_EQ(m.current(), 900);  // failed alloc not recorded
}

TEST(Memory, UnlimitedWhenNoCapacity) {
  sim::MemoryTracker m("host");
  m.alloc(std::int64_t{1} << 50);
  EXPECT_EQ(m.current(), std::int64_t{1} << 50);
}

TEST(Memory, FreeClampsAtZero) {
  sim::MemoryTracker m;
  m.alloc(10);
  m.free(100);
  EXPECT_EQ(m.current(), 0);
}

TEST(Memory, ScopedAllocReleasesOnExit) {
  sim::MemoryTracker m("t", 100);
  {
    sim::ScopedAlloc a(m, 60);
    EXPECT_EQ(m.current(), 60);
    sim::ScopedAlloc b = std::move(a);
    EXPECT_EQ(m.current(), 60);  // move does not double-count
  }
  EXPECT_EQ(m.current(), 0);
  EXPECT_EQ(m.peak(), 60);
}

TEST(Device, ComputeAdvancesClock) {
  sim::Device d(0, sim::a100_80gb());
  d.compute_fp32(120e12);  // exactly one second at A100 fp32 rate
  EXPECT_NEAR(d.clock(), 1.0, 1e-9);
  d.compute_fp16(250e12);
  EXPECT_NEAR(d.clock(), 2.0, 1e-9);
}

TEST(Cluster, SpmdRunsEveryRank) {
  sim::Cluster cluster(sim::Topology::uniform(4, 1e9));
  std::atomic<int> sum{0};
  cluster.run([&](int rank) { sum += rank + 1; });
  EXPECT_EQ(sum.load(), 10);
}

TEST(Cluster, RethrowsRankException) {
  sim::Cluster cluster(sim::Topology::uniform(3, 1e9));
  EXPECT_THROW(
      cluster.run([](int rank) {
        if (rank == 1) throw std::runtime_error("rank 1 failed");
      }),
      std::runtime_error);
}

TEST(Cluster, StatsAggregation) {
  sim::Cluster cluster(sim::Topology::uniform(2, 1e9));
  cluster.device(0).advance_clock(1.5);
  cluster.device(1).advance_clock(2.5);
  cluster.device(0).add_bytes_sent(100);
  cluster.device(1).add_bytes_sent(50);
  EXPECT_DOUBLE_EQ(cluster.max_clock(), 2.5);
  EXPECT_EQ(cluster.total_bytes_sent(), 150);
  cluster.reset_stats();
  EXPECT_DOUBLE_EQ(cluster.max_clock(), 0.0);
  EXPECT_EQ(cluster.total_bytes_sent(), 0);
}

TEST(Cluster, HostMemoryDefaultsTo512GiB) {
  sim::Cluster cluster(sim::Topology::system_ii());
  EXPECT_EQ(cluster.host_mem().capacity(), 512 * sim::kGiB);
}
