// Activation checkpointing: gradient equivalence with the plain module, the
// recompute count, and the memory trade.

#include <gtest/gtest.h>

#include "nn/checkpoint.hpp"
#include "nn/layers.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;

TEST(Checkpoint, GradientsMatchPlainModule) {
  auto x = t::randn(t::Shape{4, 8}, 1);
  auto dy = t::randn(t::Shape{4, 8}, 2);

  nn::Mlp plain("m", 8, 16, 3);
  auto y_ref = plain.forward(x);
  auto dx_ref = plain.backward(dy);

  nn::Checkpoint ckpt(std::make_unique<nn::Mlp>("m", 8, 16, 3));
  auto y = ckpt.forward(x);
  auto dx = ckpt.backward(dy);

  EXPECT_EQ(t::max_diff(y, y_ref), 0.0f);
  EXPECT_EQ(t::max_diff(dx, dx_ref), 0.0f);
  // parameter grads identical too
  auto pr = plain.parameters();
  auto pc = ckpt.parameters();
  ASSERT_EQ(pr.size(), pc.size());
  for (std::size_t i = 0; i < pr.size(); ++i)
    EXPECT_EQ(t::max_diff(pr[i]->grad, pc[i]->grad), 0.0f);
}

TEST(Checkpoint, RunsForwardTwicePerStep) {
  nn::Checkpoint ckpt(std::make_unique<nn::Linear>("l", 4, 4, 5));
  auto x = t::randn(t::Shape{2, 4}, 6);
  ckpt.forward(x);
  EXPECT_EQ(ckpt.forward_runs(), 1);
  ckpt.backward(t::ones(t::Shape{2, 4}));
  EXPECT_EQ(ckpt.forward_runs(), 2);
}

TEST(Checkpoint, HoldsOnlyInputBetweenPhases) {
  nn::Checkpoint ckpt(std::make_unique<nn::Mlp>("m", 8, 64, 7));
  auto x = t::randn(t::Shape{2, 8}, 8);
  EXPECT_EQ(ckpt.held_bytes(), 0);
  ckpt.forward(x);
  EXPECT_EQ(ckpt.held_bytes(), x.numel() * 4);  // not the 64-wide hidden
  ckpt.backward(t::ones(t::Shape{2, 8}));
  EXPECT_EQ(ckpt.held_bytes(), 0);
}

TEST(Checkpoint, ComposableInSequential) {
  auto x = t::randn(t::Shape{3, 8}, 9);
  auto dy = t::randn(t::Shape{3, 8}, 10);

  nn::Sequential plain;
  plain.add(std::make_unique<nn::Mlp>("a", 8, 16, 11));
  plain.add(std::make_unique<nn::Mlp>("b", 8, 16, 12));
  auto dx_ref = [&] {
    plain.forward(x);
    return plain.backward(dy);
  }();

  nn::Sequential ck;
  ck.add(std::make_unique<nn::Checkpoint>(std::make_unique<nn::Mlp>("a", 8, 16, 11)));
  ck.add(std::make_unique<nn::Checkpoint>(std::make_unique<nn::Mlp>("b", 8, 16, 12)));
  ck.forward(x);
  auto dx = ck.backward(dy);

  EXPECT_EQ(t::max_diff(dx, dx_ref), 0.0f);
  EXPECT_EQ(ck.num_params(), plain.num_params());
}
