// Tests for the collective communication library: correctness of every
// primitive under concurrent SPMD execution, sub-groups, clock accounting
// against the alpha-beta cost model, and p2p channels.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "collective/backend.hpp"
#include "collective/cost.hpp"
#include "sim/cluster.hpp"

namespace col = ca::collective;
namespace sim = ca::sim;

namespace {

struct Fixture {
  explicit Fixture(int n, sim::Topology topo) : cluster(std::move(topo)), backend(cluster) {
    (void)n;
  }
  explicit Fixture(int n) : Fixture(n, sim::Topology::uniform(n, 100e9)) {}
  sim::Cluster cluster;
  col::Backend backend;
};

}  // namespace

TEST(Group, AllReduceSumsAcrossRanks) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(8));
  f.cluster.run([&](int rank) {
    auto& buf = bufs[static_cast<std::size_t>(rank)];
    std::iota(buf.begin(), buf.end(), static_cast<float>(rank));
    f.backend.world().all_reduce(rank, buf);
  });
  // element i = sum over ranks of (rank + i) = 6 + 4*i
  for (int r = 0; r < n; ++r)
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                6.0f + 4.0f * static_cast<float>(i));
}

TEST(Group, ReduceScatterMatchesManualSum) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(2));
  f.cluster.run([&](int rank) {
    std::vector<float> in(8);
    for (int i = 0; i < 8; ++i) in[static_cast<std::size_t>(i)] = static_cast<float>(rank * 100 + i);
    f.backend.world().reduce_scatter(rank, in, outs[static_cast<std::size_t>(rank)]);
  });
  // chunk r of rank m's input: values m*100 + {2r, 2r+1}; sum over m: 600 + 4*(...)
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(outs[static_cast<std::size_t>(r)][0], 600.0f + 4.0f * (2.0f * r));
    EXPECT_EQ(outs[static_cast<std::size_t>(r)][1], 600.0f + 4.0f * (2.0f * r + 1.0f));
  }
}

TEST(Group, AllGatherConcatenatesInOrder) {
  const int n = 3;
  Fixture f(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(6));
  f.cluster.run([&](int rank) {
    std::vector<float> in{static_cast<float>(rank), static_cast<float>(rank) + 0.5f};
    f.backend.world().all_gather(rank, in, outs[static_cast<std::size_t>(rank)]);
  });
  for (int r = 0; r < n; ++r) {
    const auto& o = outs[static_cast<std::size_t>(r)];
    EXPECT_EQ(o, (std::vector<float>{0.0f, 0.5f, 1.0f, 1.5f, 2.0f, 2.5f}));
  }
}

TEST(Group, BroadcastFromNonzeroRoot) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(4, -1.0f));
  f.cluster.run([&](int rank) {
    auto& buf = bufs[static_cast<std::size_t>(rank)];
    if (rank == 2) std::iota(buf.begin(), buf.end(), 10.0f);
    f.backend.world().broadcast(rank, buf, /*root=*/2);
  });
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)],
              (std::vector<float>{10, 11, 12, 13}));
}

TEST(Group, ReduceOnlyUpdatesRoot) {
  const int n = 3;
  Fixture f(n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(2));
  f.cluster.run([&](int rank) {
    auto& buf = bufs[static_cast<std::size_t>(rank)];
    buf = {static_cast<float>(rank + 1), 1.0f};
    f.backend.world().reduce(rank, buf, /*root=*/0);
  });
  EXPECT_EQ(bufs[0], (std::vector<float>{6.0f, 3.0f}));
  EXPECT_EQ(bufs[1], (std::vector<float>{2.0f, 1.0f}));  // unchanged
  EXPECT_EQ(bufs[2], (std::vector<float>{3.0f, 1.0f}));  // unchanged
}

TEST(Group, AllToAllTransposesChunks) {
  const int n = 3;
  Fixture f(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(3));
  f.cluster.run([&](int rank) {
    // in[j] = rank*10 + j : chunk j (one element) destined for rank j
    std::vector<float> in{static_cast<float>(rank * 10),
                          static_cast<float>(rank * 10 + 1),
                          static_cast<float>(rank * 10 + 2)};
    f.backend.world().all_to_all(rank, in, outs[static_cast<std::size_t>(rank)]);
  });
  // out[m] on rank r = m*10 + r
  for (int r = 0; r < n; ++r)
    for (int m = 0; m < n; ++m)
      EXPECT_EQ(outs[static_cast<std::size_t>(r)][static_cast<std::size_t>(m)],
                static_cast<float>(m * 10 + r));
}

TEST(Group, SubgroupsAreIndependent) {
  const int n = 4;
  Fixture f(n);
  auto& left = f.backend.create_group({0, 1});
  auto& right = f.backend.create_group({2, 3});
  std::vector<std::vector<float>> bufs(n, std::vector<float>(1));
  f.cluster.run([&](int rank) {
    bufs[static_cast<std::size_t>(rank)][0] = static_cast<float>(rank + 1);
    auto& g = rank < 2 ? left : right;
    g.all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  EXPECT_EQ(bufs[0][0], 3.0f);  // 1+2
  EXPECT_EQ(bufs[1][0], 3.0f);
  EXPECT_EQ(bufs[2][0], 7.0f);  // 3+4
  EXPECT_EQ(bufs[3][0], 7.0f);
}

TEST(Group, SingleMemberGroupIsNoop) {
  Fixture f(2);
  auto& solo = f.backend.create_group({0});
  std::vector<float> buf{5.0f};
  std::vector<float> out(1, 0.0f);
  f.cluster.run([&](int rank) {
    if (rank != 0) return;
    solo.all_reduce(rank, buf);
    solo.all_gather(rank, buf, out);
  });
  EXPECT_EQ(buf[0], 5.0f);
  EXPECT_EQ(out[0], 5.0f);
}

TEST(Group, RepeatedCollectivesStaySynchronized) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(16, 1.0f));
  f.cluster.run([&](int rank) {
    for (int iter = 0; iter < 50; ++iter) {
      f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
      // renormalize so values stay finite: after all_reduce every value x4
      for (auto& v : bufs[static_cast<std::size_t>(rank)]) v /= static_cast<float>(n);
    }
  });
  for (int r = 0; r < n; ++r)
    for (float v : bufs[static_cast<std::size_t>(r)]) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Group, ClockAdvancesByCostModel) {
  const int n = 4;
  const double bw = 100e9;
  Fixture f(n, sim::Topology::uniform(n, bw));
  std::vector<std::vector<float>> bufs(n, std::vector<float>(1024, 1.0f));
  f.cluster.run([&](int rank) {
    f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  const std::int64_t bytes = 1024 * 4;
  const std::vector<int> ranks{0, 1, 2, 3};
  const double expect =
      col::collective_time(col::Op::kAllReduce, f.cluster.topology(), ranks, bytes);
  for (int r = 0; r < n; ++r)
    EXPECT_NEAR(f.cluster.device(r).clock(), expect, 1e-12);
}

TEST(Group, ClockSyncsToSlowestMember) {
  const int n = 2;
  Fixture f(n);
  f.cluster.run([&](int rank) {
    f.cluster.device(rank).advance_clock(rank == 0 ? 5.0 : 1.0);
    f.backend.world().barrier(rank);
  });
  EXPECT_DOUBLE_EQ(f.cluster.device(0).clock(), 5.0);
  EXPECT_DOUBLE_EQ(f.cluster.device(1).clock(), 5.0);
}

TEST(Group, BytesSentMatchesRingFormula) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> bufs(n, std::vector<float>(100, 1.0f));
  f.cluster.run([&](int rank) {
    f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  const std::int64_t payload = 100 * 4;
  const std::int64_t per_rank = 2 * (n - 1) * payload / n;
  EXPECT_EQ(f.cluster.device(0).bytes_sent(), per_rank);
  EXPECT_EQ(f.cluster.total_bytes_sent(), per_rank * n);
}

TEST(Group, AccountingTwinsMatchFunctionalCost) {
  const int n = 4;
  Fixture f1(n, sim::Topology::system_ii());
  Fixture f2(n, sim::Topology::system_ii());
  auto& g1 = f1.backend.create_group({0, 1, 2, 3});
  auto& g2 = f2.backend.create_group({0, 1, 2, 3});
  const std::int64_t elems = 4096;

  std::vector<std::vector<float>> bufs(n, std::vector<float>(elems, 1.0f));
  f1.cluster.run([&](int rank) {
    if (rank < 4) g1.all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  f2.cluster.run([&](int rank) {
    if (rank < 4) g2.account_all_reduce(rank, elems * 4);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(f1.cluster.device(r).clock(), f2.cluster.device(r).clock(), 1e-12);
    EXPECT_EQ(f1.cluster.device(r).bytes_sent(), f2.cluster.device(r).bytes_sent());
  }
}

TEST(Cost, AllReduceSlowerOnPartiallyConnectedBox) {
  // The Fig 10/11 phenomenon: identical collective, radically different time.
  auto full = sim::Topology::system_i();
  auto partial = sim::Topology::system_ii();
  const std::vector<int> ranks{0, 1, 2, 3, 4, 5, 6, 7};
  const std::int64_t bytes = 125 * 1000 * 1000;
  const double t_full =
      col::collective_time(col::Op::kAllReduce, full, ranks, bytes);
  const double t_partial =
      col::collective_time(col::Op::kAllReduce, partial, ranks, bytes);
  EXPECT_GT(t_partial / t_full, 8.0);  // 184/15 ~ 12x link ratio
}

TEST(Cost, ZeroBytesCostsNothing) {
  auto topo = sim::Topology::system_i();
  const std::vector<int> ranks{0, 1};
  EXPECT_EQ(col::collective_time(col::Op::kAllReduce, topo, ranks, 0), 0.0);
  EXPECT_EQ(col::p2p_time(topo, 0, 1, 0), 0.0);
}

TEST(Cost, BytesSentTotalsAreConsistent) {
  // total over ranks for all_reduce = 2(p-1)*payload
  EXPECT_EQ(col::bytes_sent_per_rank(col::Op::kAllReduce, 4, 400) * 4,
            2 * 3 * 400);
  EXPECT_EQ(col::bytes_sent_per_rank(col::Op::kAllGather, 4, 400) * 4,
            3 * 400);
  EXPECT_EQ(col::bytes_sent_per_rank(col::Op::kAllReduce, 1, 400), 0);
}

TEST(P2p, SendRecvMovesData) {
  Fixture f(2);
  std::vector<float> received(3, 0.0f);
  f.cluster.run([&](int rank) {
    auto& ch = f.backend.channel(0, 1);
    if (rank == 0) {
      std::vector<float> payload{1.0f, 2.0f, 3.0f};
      ch.send(payload);
    } else {
      ch.recv(received);
    }
  });
  EXPECT_EQ(received, (std::vector<float>{1, 2, 3}));
}

TEST(P2p, ClocksMeetAtTransferEnd) {
  Fixture f(2, sim::Topology::uniform(2, 1e9, sim::a100_80gb(), 0.0));
  f.cluster.run([&](int rank) {
    f.cluster.device(rank).advance_clock(rank == 0 ? 2.0 : 0.5);
    auto& ch = f.backend.channel(0, 1);
    if (rank == 0) {
      ch.send_bytes(1000000000);  // 1 GB over 1 GB/s = 1 s
    } else {
      ch.recv_bytes(1000000000);
    }
  });
  EXPECT_NEAR(f.cluster.device(0).clock(), 3.0, 1e-9);
  EXPECT_NEAR(f.cluster.device(1).clock(), 3.0, 1e-9);
}

TEST(P2p, BackToBackMessagesKeepOrder) {
  Fixture f(2);
  std::vector<float> first(1), second(1);
  f.cluster.run([&](int rank) {
    auto& ch = f.backend.channel(0, 1);
    if (rank == 0) {
      std::vector<float> a{1.0f}, b{2.0f};
      ch.send(a);
      ch.send(b);
    } else {
      ch.recv(first);
      ch.recv(second);
    }
  });
  EXPECT_EQ(first[0], 1.0f);
  EXPECT_EQ(second[0], 2.0f);
}

TEST(P2p, OppositeDirectionsAreIndependentChannels) {
  Fixture f(2);
  std::vector<float> at0(1), at1(1);
  f.cluster.run([&](int rank) {
    auto& fwd = f.backend.channel(0, 1);
    auto& bwd = f.backend.channel(1, 0);
    std::vector<float> mine{static_cast<float>(rank + 10)};
    // classic exchange: both send then recv would deadlock on one channel;
    // distinct channels make the pairing explicit.
    if (rank == 0) {
      fwd.send(mine);
      bwd.recv(at0);
    } else {
      fwd.recv(at1);
      bwd.send(mine);
    }
  });
  EXPECT_EQ(at0[0], 11.0f);
  EXPECT_EQ(at1[0], 10.0f);
}

TEST(Group, NonContiguousRanksWork) {
  // groups need not be contiguous (the 2D column groups are strided); check
  // a strided group's collectives and its ring bottleneck on System II.
  sim::Cluster cluster(sim::Topology::system_ii());
  col::Backend backend(cluster);
  auto& g = backend.create_group({1, 4, 6});
  std::vector<std::vector<float>> bufs(8, std::vector<float>(2, 0.0f));
  cluster.run([&](int rank) {
    if (!g.contains(rank)) return;
    bufs[static_cast<std::size_t>(rank)] = {static_cast<float>(rank), 1.0f};
    g.all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  for (int r : {1, 4, 6}) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)][0], 11.0f);  // 1+4+6
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)][1], 3.0f);
  }
  // every link of the {1,4,6} ring crosses PCIe on System II
  const std::vector<int> ranks{1, 4, 6};
  EXPECT_DOUBLE_EQ(cluster.topology().ring_bottleneck(ranks), 15.0e9);
}

TEST(Group, ChunkedAllReduceMatchesSerialReference) {
  // The chunked two-phase all-reduce partitions the buffer into ownership
  // chunks, so float summation is reassociated relative to a serial
  // accumulation; results must still match a single-threaded reference within
  // tolerance, for every world size and for payloads that are smaller than,
  // equal to, and much larger than the world size (1 leaves P-1 ranks with
  // empty chunks; 17 is prime so chunks are uneven; 1<<20 exercises the
  // OpenMP-parallel intra-chunk path).
  for (int n : {2, 4, 8}) {
    for (std::int64_t payload : {std::int64_t{1}, std::int64_t{17},
                                 std::int64_t{4096}, std::int64_t{1} << 20}) {
      Fixture f(n);
      std::mt19937 gen(static_cast<unsigned>(1234 + n + payload));
      std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
      std::vector<std::vector<float>> bufs(
          static_cast<std::size_t>(n),
          std::vector<float>(static_cast<std::size_t>(payload)));
      std::vector<double> ref(static_cast<std::size_t>(payload), 0.0);
      for (auto& buf : bufs)
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = dist(gen);
          ref[i] += static_cast<double>(buf[i]);
        }
      f.cluster.run([&](int rank) {
        f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
      });
      for (int r = 0; r < n; ++r) {
        const auto& got = bufs[static_cast<std::size_t>(r)];
        for (std::size_t i = 0; i < got.size(); ++i) {
          const auto want = static_cast<float>(ref[i]);
          const float tol = 1e-4f * std::max(1.0f, std::fabs(want));
          ASSERT_NEAR(got[i], want, tol)
              << "world=" << n << " payload=" << payload << " rank=" << r
              << " elem=" << i;
        }
        // every rank must observe the bit-identical reduced buffer (each
        // chunk is computed once, by its owner, and copied everywhere)
        ASSERT_EQ(got, bufs[0]) << "world=" << n << " payload=" << payload;
      }
    }
  }
}

TEST(Group, ChunkedReduceAndAllGatherMatchReference) {
  // Same order-independence guarantee for the other two reworked primitives,
  // on an uneven payload so ownership chunks differ in size.
  const int n = 4;
  const std::int64_t payload = 1031;
  Fixture f(n);
  std::mt19937 gen(99);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<std::vector<float>> bufs(
      static_cast<std::size_t>(n),
      std::vector<float>(static_cast<std::size_t>(payload)));
  std::vector<double> ref(static_cast<std::size_t>(payload), 0.0);
  for (auto& buf : bufs)
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = dist(gen);
      ref[i] += static_cast<double>(buf[i]);
    }
  auto inputs = bufs;  // keep originals for the gather check

  std::vector<std::vector<float>> gathered(
      static_cast<std::size_t>(n),
      std::vector<float>(static_cast<std::size_t>(n * payload)));
  f.cluster.run([&](int rank) {
    f.backend.world().reduce(rank, bufs[static_cast<std::size_t>(rank)],
                             /*root=*/2);
    f.backend.world().all_gather(rank, inputs[static_cast<std::size_t>(rank)],
                                 gathered[static_cast<std::size_t>(rank)]);
  });
  for (std::size_t i = 0; i < static_cast<std::size_t>(payload); ++i) {
    const auto want = static_cast<float>(ref[i]);
    const float tol = 1e-4f * std::max(1.0f, std::fabs(want));
    ASSERT_NEAR(bufs[2][i], want, tol) << "reduce elem " << i;
  }
  EXPECT_EQ(bufs[1], inputs[1]);  // non-root buffers untouched
  for (int r = 0; r < n; ++r)
    for (int m = 0; m < n; ++m)
      for (std::size_t i = 0; i < static_cast<std::size_t>(payload); ++i)
        ASSERT_EQ(gathered[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(m) * payload + i],
                  inputs[static_cast<std::size_t>(m)][i])
            << "all_gather rank=" << r << " chunk=" << m << " elem=" << i;
}

TEST(Group, IndexOfMapsGlobalToGroupRank) {
  sim::Cluster cluster(sim::Topology::uniform(8, 1e9));
  col::Backend backend(cluster);
  auto& g = backend.create_group({7, 2, 5});
  EXPECT_EQ(g.index_of(7), 0);
  EXPECT_EQ(g.index_of(2), 1);
  EXPECT_EQ(g.index_of(5), 2);
  EXPECT_TRUE(g.contains(5));
  EXPECT_FALSE(g.contains(0));
}

TEST(Group, GatherConcatenatesAtRoot) {
  const int n = 3;
  Fixture f(n);
  std::vector<float> rootbuf(6, -1.0f);
  f.cluster.run([&](int rank) {
    std::vector<float> in{static_cast<float>(rank * 2),
                          static_cast<float>(rank * 2 + 1)};
    std::vector<float> empty;
    f.backend.world().gather(rank, in,
                             rank == 1 ? std::span<float>(rootbuf)
                                       : std::span<float>(empty),
                             /*root=*/1);
  });
  EXPECT_EQ(rootbuf, (std::vector<float>{0, 1, 2, 3, 4, 5}));
}

TEST(Group, ScatterDistributesRootChunks) {
  const int n = 4;
  Fixture f(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(2, -1.0f));
  std::vector<float> rootdata{0, 1, 10, 11, 20, 21, 30, 31};
  f.cluster.run([&](int rank) {
    std::vector<float> empty;
    f.backend.world().scatter(
        rank, rank == 0 ? std::span<const float>(rootdata)
                        : std::span<const float>(empty),
        outs[static_cast<std::size_t>(rank)], /*root=*/0);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(outs[static_cast<std::size_t>(r)],
              (std::vector<float>{static_cast<float>(r * 10),
                                  static_cast<float>(r * 10 + 1)}));
  }
}

TEST(Group, ScatterThenGatherRoundTrips) {
  const int n = 4;
  Fixture f(n);
  std::vector<float> original{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> back(8, 0.0f);
  f.cluster.run([&](int rank) {
    std::vector<float> mine(2);
    std::vector<float> empty;
    f.backend.world().scatter(
        rank, rank == 0 ? std::span<const float>(original)
                        : std::span<const float>(empty),
        mine, 0);
    f.backend.world().gather(rank, mine,
                             rank == 0 ? std::span<float>(back)
                                       : std::span<float>(empty),
                             0);
  });
  EXPECT_EQ(back, original);
}

// ---- non-blocking collectives ---------------------------------------------------

TEST(Async, AllReduceBitIdenticalToBlocking) {
  for (int n : {2, 4, 8}) {
    for (std::int64_t len : {std::int64_t{1}, std::int64_t{17},
                             std::int64_t{4096}}) {
      Fixture f(n);
      std::vector<std::vector<float>> blocking(
          static_cast<std::size_t>(n), std::vector<float>(static_cast<std::size_t>(len)));
      std::vector<std::vector<float>> deferred = blocking;
      f.cluster.run([&](int rank) {
        auto& b = blocking[static_cast<std::size_t>(rank)];
        auto& d = deferred[static_cast<std::size_t>(rank)];
        std::mt19937 rng(1234u + static_cast<unsigned>(rank));
        std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
        for (std::size_t i = 0; i < b.size(); ++i) d[i] = b[i] = dist(rng);
        f.backend.world().all_reduce(rank, b);
        auto h = f.backend.world().all_reduce_async(rank, d);
        h.wait();
      });
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(deferred[static_cast<std::size_t>(r)],
                  blocking[static_cast<std::size_t>(r)])
            << "world " << n << " len " << len << " rank " << r;
      }
    }
  }
}

TEST(Async, FusedScaleMatchesSumThenMultiply) {
  const int n = 4;
  Fixture f(n);
  const std::size_t len = 1000;
  std::vector<std::vector<float>> ref(n, std::vector<float>(len));
  std::vector<std::vector<float>> fused = ref;
  const float scale = 1.0f / static_cast<float>(n);
  f.cluster.run([&](int rank) {
    auto& a = ref[static_cast<std::size_t>(rank)];
    auto& b = fused[static_cast<std::size_t>(rank)];
    std::mt19937 rng(99u + static_cast<unsigned>(rank));
    std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
    for (std::size_t i = 0; i < len; ++i) b[i] = a[i] = dist(rng);
    f.backend.world().all_reduce(rank, a);
    for (auto& v : a) v *= scale;  // reference: sum, then multiply
    f.backend.world().all_reduce(rank, b, scale);  // fused copy-out
  });
  for (int r = 0; r < n; ++r)
    ASSERT_EQ(fused[static_cast<std::size_t>(r)], ref[static_cast<std::size_t>(r)]);
}

TEST(Async, OutOfOrderWaitDrainsEarlierOps) {
  const int n = 4;
  Fixture f(n);
  const std::size_t len = 64;
  std::vector<std::array<std::vector<float>, 3>> bufs(static_cast<std::size_t>(n));
  f.cluster.run([&](int rank) {
    auto& mine = bufs[static_cast<std::size_t>(rank)];
    for (int k = 0; k < 3; ++k) {
      mine[static_cast<std::size_t>(k)].assign(len, static_cast<float>(rank + k));
    }
    auto h0 = f.backend.world().all_reduce_async(rank, mine[0]);
    auto h1 = f.backend.world().all_reduce_async(rank, mine[1]);
    auto h2 = f.backend.world().all_reduce_async(rank, mine[2]);
    EXPECT_FALSE(h0.test());
    EXPECT_FALSE(h2.test());
    h2.wait();  // must drain h0 and h1 first to preserve group order
    EXPECT_TRUE(h0.test());
    EXPECT_TRUE(h1.test());
    h0.wait();  // idempotent
    h1.wait();
  });
  // op k: element sum over ranks of (rank + k) = 6 + 4k
  for (int r = 0; r < n; ++r)
    for (int k = 0; k < 3; ++k)
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)][i],
                  6.0f + 4.0f * static_cast<float>(k));
}

TEST(Async, TestPollsWithoutProgressAndBlockingCollectiveFlushes) {
  const int n = 2;
  Fixture f(n);
  f.cluster.run([&](int rank) {
    std::vector<float> a(8, static_cast<float>(rank));
    std::vector<float> b(4, 1.0f);
    auto h = f.backend.world().all_reduce_async(rank, a);
    EXPECT_TRUE(h.valid());
    EXPECT_FALSE(h.test());
    EXPECT_FALSE(h.test());  // polling never executes the op
    // a blocking collective implicitly flushes the pending queue first
    f.backend.world().all_reduce(rank, b);
    EXPECT_TRUE(h.test());
    h.wait();
    for (float v : a) EXPECT_EQ(v, 1.0f);  // 0 + 1
    for (float v : b) EXPECT_EQ(v, 2.0f);
  });
}

TEST(Async, ManyInFlightBucketsCompleteCorrectly) {
  const int n = 4;
  const int kOps = 32;
  Fixture f(n);
  std::vector<std::vector<std::vector<float>>> bufs(
      static_cast<std::size_t>(n),
      std::vector<std::vector<float>>(kOps));
  f.cluster.run([&](int rank) {
    auto& mine = bufs[static_cast<std::size_t>(rank)];
    std::vector<col::CollectiveHandle> handles;
    handles.reserve(kOps);
    for (int k = 0; k < kOps; ++k) {
      mine[static_cast<std::size_t>(k)].assign(
          static_cast<std::size_t>(16 + k), static_cast<float>(rank * kOps + k));
      handles.push_back(
          f.backend.world().all_reduce_async(rank, mine[static_cast<std::size_t>(k)]));
    }
    // wait newest-to-oldest: every wait of op k drains all earlier ops
    for (int k = kOps - 1; k >= 0; --k) handles[static_cast<std::size_t>(k)].wait();
  });
  for (int r = 0; r < n; ++r) {
    for (int k = 0; k < kOps; ++k) {
      // sum over ranks of (rank*kOps + k) = kOps*(0+1+2+3) + 4k
      const float want = static_cast<float>(kOps * 6 + 4 * k);
      for (float v : bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)])
        ASSERT_EQ(v, want);
    }
  }
}

TEST(Async, ReduceScatterAndAllGatherMatchBlocking) {
  const int n = 4;
  Fixture f(n);
  const std::size_t chunk = 5, full = chunk * n;
  std::vector<std::vector<float>> rs_ref(n, std::vector<float>(chunk));
  std::vector<std::vector<float>> rs_async = rs_ref;
  std::vector<std::vector<float>> ag_ref(n, std::vector<float>(full));
  std::vector<std::vector<float>> ag_async = ag_ref;
  f.cluster.run([&](int rank) {
    std::vector<float> in(full);
    std::mt19937 rng(7u + static_cast<unsigned>(rank));
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (auto& v : in) v = dist(rng);
    std::vector<float> small(chunk, static_cast<float>(rank) + 0.25f);

    f.backend.world().reduce_scatter(rank, in, rs_ref[static_cast<std::size_t>(rank)]);
    f.backend.world().all_gather(rank, small, ag_ref[static_cast<std::size_t>(rank)]);

    auto h1 = f.backend.world().reduce_scatter_async(
        rank, in, rs_async[static_cast<std::size_t>(rank)]);
    auto h2 = f.backend.world().all_gather_async(
        rank, small, ag_async[static_cast<std::size_t>(rank)]);
    h2.wait();
    EXPECT_TRUE(h1.test());
    h1.wait();
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(rs_async[static_cast<std::size_t>(r)], rs_ref[static_cast<std::size_t>(r)]);
    ASSERT_EQ(ag_async[static_cast<std::size_t>(r)], ag_ref[static_cast<std::size_t>(r)]);
  }
}

TEST(Async, OverlappedCommIsChargedOnlyUnhiddenTime) {
  const int n = 2;
  Fixture f(n);
  std::vector<double> clocks(static_cast<std::size_t>(n));
  f.cluster.run([&](int rank) {
    std::vector<float> buf(1 << 12, 1.0f);
    const double t0 = f.cluster.device(rank).clock();
    auto h = f.backend.world().all_reduce_async(rank, buf);
    // a long compute window fully hides the transfer
    f.cluster.device(rank).advance_clock(1.0);
    h.wait();
    clocks[static_cast<std::size_t>(rank)] = f.cluster.device(rank).clock() - t0;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(clocks[static_cast<std::size_t>(r)], 1.0)
        << "hidden communication must not advance the clock";
  }
}

TEST(Async, UnhiddenCommChargesCompletionTime) {
  const int n = 2;
  Fixture f(n);
  const std::int64_t len = 1 << 12;
  std::vector<double> async_cost(static_cast<std::size_t>(n));
  std::vector<double> blocking_cost(static_cast<std::size_t>(n));
  f.cluster.run([&](int rank) {
    std::vector<float> a(static_cast<std::size_t>(len), 1.0f);
    std::vector<float> b = a;
    double t0 = f.cluster.device(rank).clock();
    auto h = f.backend.world().all_reduce_async(rank, a);
    h.wait();  // no compute in between: full comm time is exposed
    async_cost[static_cast<std::size_t>(rank)] = f.cluster.device(rank).clock() - t0;
    t0 = f.cluster.device(rank).clock();
    f.backend.world().all_reduce(rank, b);
    blocking_cost[static_cast<std::size_t>(rank)] = f.cluster.device(rank).clock() - t0;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GT(async_cost[static_cast<std::size_t>(r)], 0.0);
    EXPECT_DOUBLE_EQ(async_cost[static_cast<std::size_t>(r)],
                     blocking_cost[static_cast<std::size_t>(r)]);
  }
}

TEST(P2p, PrepostedRecvOverlapsTransferWithCompute) {
  Fixture f(2);
  std::vector<float> payload{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> got(4, 0.0f);
  std::vector<double> recv_cost(1);
  f.cluster.run([&](int rank) {
    if (rank == 0) {
      f.backend.channel(0, 1).send_async(payload);
    } else {
      auto h = f.backend.channel(0, 1).irecv(got);
      // compute long enough to hide the transfer completely
      f.cluster.device(rank).advance_clock(1.0);
      const double before = f.cluster.device(rank).clock();
      h.wait();
      recv_cost[0] = f.cluster.device(rank).clock() - before;
    }
  });
  EXPECT_EQ(got, payload);
  EXPECT_DOUBLE_EQ(recv_cost[0], 0.0);
}
