// Unit tests for the tensor substrate: shapes, storage semantics, kernels,
// fp16 conversion, and shape ops. Gradient kernels are checked against
// central finite differences.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace t = ca::tensor;

TEST(Shape, BasicProperties) {
  t::Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.strides(), (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_EQ(s.with_dim(-1, 7), (t::Shape{2, 3, 7}));
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  t::Shape s{};
  EXPECT_EQ(s.ndim(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Tensor, SharedStorageOnCopy) {
  t::Tensor a(t::Shape{4}, 1.0f);
  t::Tensor b = a;  // shallow
  b[0] = 42.0f;
  EXPECT_EQ(a[0], 42.0f);
  EXPECT_TRUE(a.shares_storage_with(b));

  t::Tensor c = a.clone();
  c[0] = 7.0f;
  EXPECT_EQ(a[0], 42.0f);
  EXPECT_FALSE(a.shares_storage_with(c));
}

TEST(Tensor, ReshapeSharesStorage) {
  t::Tensor a(t::Shape{2, 6}, 3.0f);
  t::Tensor b = a.reshape(t::Shape{3, 4});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(b.shape(), (t::Shape{3, 4}));
}

TEST(Tensor, At2d) {
  t::Tensor a = t::arange(6).reshape(t::Shape{2, 3});
  EXPECT_EQ(a.at(1, 2), 5.0f);
  a.at(0, 1) = -1.0f;
  EXPECT_EQ(a[1], -1.0f);
}

TEST(Creation, RandnDeterministic) {
  auto a = t::randn(t::Shape{128}, 1234);
  auto b = t::randn(t::Shape{128}, 1234);
  auto c = t::randn(t::Shape{128}, 999);
  EXPECT_EQ(t::max_diff(a, b), 0.0f);
  EXPECT_GT(t::max_diff(a, c), 0.0f);
}

TEST(Creation, RandnMoments) {
  auto a = t::randn(t::Shape{20000}, 7, 2.0f, 0.5f);
  EXPECT_NEAR(t::mean(a), 2.0f, 0.02f);
  double var = 0.0;
  for (float v : a.data()) var += (v - 2.0) * (v - 2.0);
  var /= static_cast<double>(a.numel());
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(Creation, UniformRange) {
  auto a = t::uniform(t::Shape{1000}, 3, -2.0f, 5.0f);
  for (float v : a.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Elementwise, AddSubMul) {
  auto a = t::arange(4);
  auto b = t::full(t::Shape{4}, 2.0f);
  EXPECT_EQ(t::add(a, b)[3], 5.0f);
  EXPECT_EQ(t::sub(a, b)[0], -2.0f);
  EXPECT_EQ(t::mul(a, b)[2], 4.0f);
  EXPECT_EQ(t::add_scalar(a, 10.0f)[1], 11.0f);
  EXPECT_EQ(t::mul_scalar(a, -1.0f)[3], -3.0f);
}

TEST(Elementwise, InPlace) {
  auto a = t::ones(t::Shape{3});
  auto b = t::arange(3);
  t::add_(a, b);
  EXPECT_EQ(a[2], 3.0f);
  t::axpy_(a, 2.0f, b);
  EXPECT_EQ(a[2], 7.0f);
  t::scale_(a, 0.5f);
  EXPECT_EQ(a[2], 3.5f);
}

TEST(Elementwise, AddBiasBroadcast) {
  auto a = t::zeros(t::Shape{2, 2, 3});
  auto bias = t::arange(3);
  auto y = t::add_bias(a, bias);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(y[r * 3 + 0], 0.0f);
    EXPECT_EQ(y[r * 3 + 1], 1.0f);
    EXPECT_EQ(y[r * 3 + 2], 2.0f);
  }
}

TEST(Matmul, Known2x2) {
  t::Tensor a(t::Shape{2, 2}, {1, 2, 3, 4});
  t::Tensor b(t::Shape{2, 2}, {5, 6, 7, 8});
  auto c = t::matmul(a, b);
  EXPECT_EQ(c[0], 19.0f);
  EXPECT_EQ(c[1], 22.0f);
  EXPECT_EQ(c[2], 43.0f);
  EXPECT_EQ(c[3], 50.0f);
}

TEST(Matmul, LeadingDimsCollapse) {
  auto a = t::randn(t::Shape{2, 3, 4}, 1);
  auto b = t::randn(t::Shape{4, 5}, 2);
  auto c = t::matmul(a, b);
  EXPECT_EQ(c.shape(), (t::Shape{2, 3, 5}));
  // equals flattening the leading dims
  auto c2 = t::matmul(a.reshape(t::Shape{6, 4}), b);
  EXPECT_EQ(t::max_diff(c.reshape(t::Shape{6, 5}), c2), 0.0f);
}

TEST(Matmul, TransposedVariantsAgree) {
  auto a = t::randn(t::Shape{3, 4}, 10);
  auto b = t::randn(t::Shape{4, 5}, 11);
  auto ref = t::matmul(a, b);
  // matmul_tn(a^T, b) == a b
  auto viaTN = t::matmul_tn(t::transpose2d(a), b);
  EXPECT_LT(t::max_diff(ref, viaTN), 1e-5f);
  // matmul_nt(a, b^T) == a b
  auto viaNT = t::matmul_nt(a, t::transpose2d(b));
  EXPECT_LT(t::max_diff(ref, viaNT), 1e-5f);
}

TEST(Matmul, BmmAgainstLoop) {
  auto a = t::randn(t::Shape{3, 2, 4}, 20);
  auto b = t::randn(t::Shape{3, 4, 5}, 21);
  auto c = t::bmm(a, b);
  for (int i = 0; i < 3; ++i) {
    auto ai = t::chunk(a, 0, 3, i).reshape(t::Shape{2, 4});
    auto bi = t::chunk(b, 0, 3, i).reshape(t::Shape{4, 5});
    auto ci = t::chunk(c, 0, 3, i).reshape(t::Shape{2, 5});
    EXPECT_LT(t::max_diff(ci, t::matmul(ai, bi)), 1e-5f);
  }
}

TEST(Matmul, BmmTransposedVariants) {
  auto a = t::randn(t::Shape{2, 3, 4}, 30);
  auto b = t::randn(t::Shape{2, 4, 5}, 31);
  auto ref = t::bmm(a, b);

  // bmm_nt(a, b^T-batched)
  t::Tensor bt(t::Shape{2, 5, 4});
  for (int bt_i = 0; bt_i < 2; ++bt_i) {
    auto bi = t::chunk(b, 0, 2, bt_i).reshape(t::Shape{4, 5});
    auto bit = t::transpose2d(bi);
    std::copy(bit.data().begin(), bit.data().end(),
              bt.data().begin() + bt_i * 20);
  }
  EXPECT_LT(t::max_diff(ref, t::bmm_nt(a, bt)), 1e-5f);

  // bmm_tn(a^T-batched, b)
  t::Tensor at(t::Shape{2, 4, 3});
  for (int i = 0; i < 2; ++i) {
    auto ai = t::chunk(a, 0, 2, i).reshape(t::Shape{3, 4});
    auto ait = t::transpose2d(ai);
    std::copy(ait.data().begin(), ait.data().end(),
              at.data().begin() + i * 12);
  }
  EXPECT_LT(t::max_diff(ref, t::bmm_tn(at, b)), 1e-5f);
}

TEST(Reduction, SumMeanMaxAbs) {
  t::Tensor a(t::Shape{4}, {1, -2, 3, -4});
  EXPECT_EQ(t::sum(a), -2.0f);
  EXPECT_EQ(t::mean(a), -0.5f);
  EXPECT_EQ(t::max_abs(a), 4.0f);
}

TEST(Reduction, SumToLastdim) {
  auto a = t::ones(t::Shape{2, 3, 4});
  auto s = t::sum_to_lastdim(a);
  EXPECT_EQ(s.shape(), (t::Shape{4}));
  EXPECT_EQ(s[0], 6.0f);
}

TEST(Reduction, ArgmaxRows) {
  t::Tensor a(t::Shape{2, 3}, {0, 5, 1, 9, 2, 3});
  auto idx = t::argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Softmax, RowsSumToOne) {
  auto a = t::randn(t::Shape{7, 13}, 42);
  auto y = t::softmax_lastdim(a);
  for (int r = 0; r < 7; ++r) {
    float s = 0.0f;
    for (int c = 0; c < 13; ++c) s += y[r * 13 + c];
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableForLargeLogits) {
  t::Tensor a(t::Shape{1, 3}, {1000.0f, 1000.0f, 999.0f});
  auto y = t::softmax_lastdim(a);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y[0], y[2]);
}

namespace {

/// Central-difference gradient check for a scalar-valued loss built from a
/// unary op: loss = sum(op(x) * w) with fixed random w.
template <class Fwd, class Bwd>
void check_unary_grad(Fwd fwd, Bwd bwd, float tol = 2e-2f) {
  auto x = t::randn(t::Shape{32}, 5, 0.0f, 1.0f);
  auto w = t::randn(t::Shape{32}, 6, 0.0f, 1.0f);
  auto dy = w;  // dL/dy for L = sum(y * w)
  auto analytic = bwd(x, dy);
  const float eps = 1e-3f;
  for (int i = 0; i < 32; i += 5) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    const float lp = t::sum(t::mul(fwd(xp), w));
    const float lm = t::sum(t::mul(fwd(xm), w));
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric, tol) << "at index " << i;
  }
}

}  // namespace

TEST(Grad, GeluMatchesFiniteDifference) {
  check_unary_grad([](const t::Tensor& x) { return t::gelu(x); },
                   [](const t::Tensor& x, const t::Tensor& dy) {
                     return t::gelu_backward(x, dy);
                   });
}

TEST(Grad, ReluMatchesFiniteDifference) {
  check_unary_grad([](const t::Tensor& x) { return t::relu(x); },
                   [](const t::Tensor& x, const t::Tensor& dy) {
                     return t::relu_backward(x, dy);
                   });
}

TEST(Grad, SoftmaxMatchesFiniteDifference) {
  auto x = t::randn(t::Shape{4, 8}, 15);
  auto w = t::randn(t::Shape{4, 8}, 16);
  auto y = t::softmax_lastdim(x);
  auto dx = t::softmax_backward(y, w);
  const float eps = 1e-3f;
  for (int i = 0; i < 32; i += 7) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    const float lp = t::sum(t::mul(t::softmax_lastdim(xp), w));
    const float lm = t::sum(t::mul(t::softmax_lastdim(xm), w));
    EXPECT_NEAR(dx[i], (lp - lm) / (2.0f * eps), 1e-2f);
  }
}

TEST(LayerNorm, NormalizesRows) {
  auto x = t::randn(t::Shape{5, 64}, 77, 3.0f, 2.0f);
  auto gamma = t::ones(t::Shape{64});
  auto beta = t::zeros(t::Shape{64});
  t::Tensor mu, rstd;
  auto y = t::layernorm_forward(x, gamma, beta, 1e-5f, mu, rstd);
  for (int r = 0; r < 5; ++r) {
    float m = 0.0f, v = 0.0f;
    for (int c = 0; c < 64; ++c) m += y[r * 64 + c];
    m /= 64.0f;
    for (int c = 0; c < 64; ++c) v += (y[r * 64 + c] - m) * (y[r * 64 + c] - m);
    v /= 64.0f;
    EXPECT_NEAR(m, 0.0f, 1e-4f);
    EXPECT_NEAR(v, 1.0f, 1e-2f);
  }
}

TEST(LayerNorm, BackwardMatchesFiniteDifference) {
  const int rows = 3, h = 16;
  auto x = t::randn(t::Shape{rows, h}, 8);
  auto gamma = t::uniform(t::Shape{h}, 9, 0.5f, 1.5f);
  auto beta = t::randn(t::Shape{h}, 10);
  auto w = t::randn(t::Shape{rows, h}, 11);

  t::Tensor mu, rstd;
  auto y = t::layernorm_forward(x, gamma, beta, 1e-5f, mu, rstd);
  auto dgamma = t::zeros(t::Shape{h});
  auto dbeta = t::zeros(t::Shape{h});
  auto dx = t::layernorm_backward(x, w, gamma, mu, rstd, dgamma, dbeta);

  const float eps = 1e-2f;
  auto loss = [&](const t::Tensor& xx) {
    t::Tensor m2, r2;
    return t::sum(t::mul(t::layernorm_forward(xx, gamma, beta, 1e-5f, m2, r2), w));
  };
  for (int i = 0; i < rows * h; i += 11) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss(xp) - loss(xm)) / (2.0f * eps), 5e-2f);
  }
  // dbeta is just the sum of dy over rows
  auto expected_dbeta = t::sum_to_lastdim(w);
  EXPECT_LT(t::max_diff(dbeta, expected_dbeta), 1e-4f);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const int n = 4, c = 8;
  auto logits = t::zeros(t::Shape{n, c});
  std::vector<std::int64_t> labels{0, 1, 2, 3};
  t::Tensor dl;
  const float loss = t::cross_entropy(logits, labels, dl);
  EXPECT_NEAR(loss, std::log(static_cast<float>(c)), 1e-5f);
  // gradient sums to zero per row
  for (int r = 0; r < n; ++r) {
    float s = 0.0f;
    for (int j = 0; j < c; ++j) s += dl[r * c + j];
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(CrossEntropy, GradMatchesFiniteDifference) {
  const int n = 3, c = 5;
  auto logits = t::randn(t::Shape{n, c}, 33);
  std::vector<std::int64_t> labels{4, 0, 2};
  t::Tensor dl;
  t::cross_entropy(logits, labels, dl);
  const float eps = 1e-3f;
  for (int i = 0; i < n * c; ++i) {
    auto lp = logits.clone();
    auto lm = logits.clone();
    lp[i] += eps;
    lm[i] -= eps;
    t::Tensor tmp;
    const float fp = t::cross_entropy(lp, labels, tmp);
    const float fm = t::cross_entropy(lm, labels, tmp);
    EXPECT_NEAR(dl[i], (fp - fm) / (2.0f * eps), 1e-3f);
  }
}

TEST(ShapeOps, NarrowMiddleDim) {
  auto a = t::arange(24).reshape(t::Shape{2, 3, 4});
  auto b = t::narrow(a, 1, 1, 2);
  EXPECT_EQ(b.shape(), (t::Shape{2, 2, 4}));
  EXPECT_EQ(b[0], 4.0f);   // a[0,1,0]
  EXPECT_EQ(b[8], 16.0f);  // a[1,1,0]
}

TEST(ShapeOps, ChunkAndCatRoundTrip) {
  auto a = t::randn(t::Shape{4, 6}, 50);
  for (std::int64_t dim = 0; dim < 2; ++dim) {
    std::vector<t::Tensor> parts;
    for (int i = 0; i < 2; ++i) parts.push_back(t::chunk(a, dim, 2, i));
    auto back = t::cat(parts, dim);
    EXPECT_EQ(t::max_diff(a, back), 0.0f) << "dim=" << dim;
  }
}

TEST(ShapeOps, CatUnevenParts) {
  auto a = t::narrow(t::arange(10).reshape(t::Shape{10, 1}), 0, 0, 3);
  auto b = t::narrow(t::arange(10).reshape(t::Shape{10, 1}), 0, 3, 7);
  auto c = t::cat(std::vector<t::Tensor>{a, b}, 0);
  EXPECT_EQ(c.shape(), (t::Shape{10, 1}));
  EXPECT_EQ(c[9], 9.0f);
}

TEST(Compare, Allclose) {
  auto a = t::ones(t::Shape{4});
  auto b = t::add_scalar(a, 1e-7f);
  EXPECT_TRUE(t::allclose(a, b));
  auto c = t::add_scalar(a, 1e-2f);
  EXPECT_FALSE(t::allclose(a, c));
  EXPECT_FALSE(t::allclose(a, t::ones(t::Shape{2, 2})));  // shape mismatch
}

// ---- fp16 -------------------------------------------------------------------

TEST(Half, ExactSmallValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f}) {
    EXPECT_EQ(t::fp16_round_trip(v), v);
  }
}

TEST(Half, RoundsToNearest) {
  // 1 + 2^-11 is exactly between fp16 neighbours 1.0 and 1+2^-10; ties to even.
  const float v = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(t::fp16_round_trip(v), 1.0f);
  const float w = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(t::fp16_round_trip(w), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, OverflowToInf) {
  EXPECT_TRUE(std::isinf(t::fp16_round_trip(70000.0f)));
  EXPECT_TRUE(std::isinf(t::fp16_round_trip(-70000.0f)));
  EXPECT_LT(t::fp16_round_trip(-70000.0f), 0.0f);
}

TEST(Half, SubnormalsRepresentable) {
  const float tiny = std::ldexp(1.0f, -24);  // smallest fp16 subnormal
  EXPECT_EQ(t::fp16_round_trip(tiny), tiny);
  const float denorm = 3.0f * std::ldexp(1.0f, -24);
  EXPECT_EQ(t::fp16_round_trip(denorm), denorm);
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(t::fp16_round_trip(std::ldexp(1.0f, -30)), 0.0f);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(t::fp16_round_trip(std::nanf(""))));
}

TEST(Half, RelativeErrorBounded) {
  // normal range: relative error <= 2^-11
  auto xs = t::uniform(t::Shape{1000}, 60, -1000.0f, 1000.0f);
  for (float v : xs.data()) {
    if (std::fabs(v) < 1e-3f) continue;
    const float r = t::fp16_round_trip(v);
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), 1.0f / 2048.0f + 1e-7f);
  }
}
