// Failure injection: out-of-memory behaviour (the mechanism behind every
// "increase until OOM" range test in the paper), error propagation out of the
// SPMD region, and edge-case schedules.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "pp/pipeline.hpp"
#include "tp/linear1d.hpp"
#include "zero/chunk.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace pp = ca::pp;

namespace {

/// A cluster of tiny-memory devices for functional OOM tests.
sim::Topology tiny_gpus(int n, std::int64_t capacity_bytes) {
  sim::GpuModel gpu{"tiny", capacity_bytes, 1e12, 1e12};
  return sim::Topology::uniform(n, 100e9, gpu);
}

}  // namespace

TEST(FailureInjection, FunctionalRangeTestHitsOom) {
  // the paper's protocol: grow the batch until out-of-memory; the simulated
  // devices enforce their capacity and the OOM surfaces as sim::OomError.
  const int p = 2;
  const std::int64_t h = 32;
  std::int64_t max_batch = 0;
  for (std::int64_t b = 8;; b += 8) {
    sim::Cluster cluster(tiny_gpus(p, 64 << 10));  // 64 KiB devices
    col::Backend backend(cluster);
    core::Config cfg;
    cfg.tensor_parallel_size = p;
    cfg.tensor_mode = core::TpMode::k1d;
    core::ParallelContext ctx(backend, cfg);
    try {
      auto x = t::randn(t::Shape{b, h}, 1);
      cluster.run([&](int g) {
        tp::Env env{&ctx, g};
        tp::Linear1DCol l1(env, "a", h, h, 2, false);
        tp::Linear1DRow l2(env, "b", h, h, 3);
        auto y = l2.forward(l1.forward(x));
        (void)y;
        l1.backward(l2.backward(x));
      });
      max_batch = b;
    } catch (const sim::OomError& e) {
      EXPECT_GT(e.requested(), 0);
      EXPECT_LE(e.in_use(), e.capacity());
      break;
    }
    ASSERT_LT(b, 10000) << "never hit OOM";
  }
  EXPECT_GT(max_batch, 0);  // something fit before the wall
}

TEST(FailureInjection, OomDoesNotCorruptTracker) {
  sim::MemoryTracker mem("gpu", 100);
  mem.alloc(60);
  EXPECT_THROW(mem.alloc(50), sim::OomError);
  EXPECT_EQ(mem.current(), 60);  // failed alloc not recorded
  mem.free(60);
  EXPECT_EQ(mem.current(), 0);
  EXPECT_NO_THROW(mem.alloc(100));  // full capacity usable again
}

TEST(FailureInjection, ChunkMoveToFullDeviceThrows) {
  sim::Cluster cluster(tiny_gpus(1, 1000));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    ca::zero::ChunkManager cm(env, 800, ca::zero::Placement::kHost);
    cm.append("a", 800);
    env.mem().alloc(500);  // pre-existing pressure
    EXPECT_THROW(cm.fetch(0), sim::OomError);
    // the chunk stays consistently on the host after the failed move
    EXPECT_EQ(cm.host_bytes(), 800);
    EXPECT_EQ(cm.device_bytes(), 0);
  });
}

TEST(FailureInjection, WorkerExceptionPropagatesWithMessage) {
  sim::Cluster cluster(sim::Topology::uniform(4, 1e9));
  try {
    cluster.run([](int rank) {
      if (rank == 2) throw std::runtime_error("injected fault on rank 2");
    });
    FAIL() << "expected propagation";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected fault on rank 2");
  }
}

TEST(FailureInjection, PipelineWithFewerMicrosThanStages) {
  // M=1 on a 2-stage pipeline: pure fill/drain, still correct gradients.
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.pipeline_parallel_size = 2;
  core::ParallelContext ctx(backend, cfg);

  auto x = t::randn(t::Shape{2, 4}, 5);
  const std::vector<std::int64_t> labels{0, 1};
  nn::Linear r0("s0", 4, 6, 6), r1("s1", 6, 2, 7);
  auto y = r1.forward(r0.forward(x));
  t::Tensor dl;
  const float ref_loss = t::cross_entropy(y, labels, dl);
  r0.backward(r1.backward(dl));

  std::vector<t::Tensor> grads(2);
  float loss = 0.0f;
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear stage(g == 0 ? "s0" : "s1", g == 0 ? 4 : 6, g == 0 ? 6 : 2,
                     g == 0 ? 6 : 7);
    pp::Pipeline pipe(env, stage, t::Shape{2, g == 0 ? 4 : 6},
                      pp::Schedule::kOneFOneB);
    std::vector<t::Tensor> inputs{x};
    const float l =
        pipe.train_step(1, g == 0 ? std::span<const t::Tensor>(inputs)
                                  : std::span<const t::Tensor>{},
                        [&](const t::Tensor& yy, t::Tensor& dy, int) {
                          t::Tensor d2;
                          const float lv = t::cross_entropy(yy, labels, d2);
                          dy = d2;
                          return lv;
                        });
    grads[static_cast<std::size_t>(g)] = stage.weight().grad.clone();
    if (g == 1) loss = l;
  });
  EXPECT_NEAR(loss, ref_loss, 1e-6f);
  EXPECT_TRUE(t::allclose(grads[0], r0.weight().grad, 1e-5f));
  EXPECT_TRUE(t::allclose(grads[1], r1.weight().grad, 1e-5f));
}

TEST(FailureInjection, ScopedAllocReleasesOnException) {
  sim::MemoryTracker mem("gpu", 1000);
  try {
    sim::ScopedAlloc a(mem, 400);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(mem.current(), 0);  // RAII released despite the unwind
}
