// Failure injection: out-of-memory behaviour (the mechanism behind every
// "increase until OOM" range test in the paper), error propagation out of the
// SPMD region, edge-case schedules, and the fault matrix — fail-stop /
// straggler / link-degrade / NaN / transient faults against the watchdog,
// the numeric guard, and checkpoint/restore.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "collective/p2p.hpp"
#include "core/launch.hpp"
#include "core/serialize.hpp"
#include "data/synthetic.hpp"
#include "engine/checkpoint.hpp"
#include "engine/zero_engine.hpp"
#include "nn/checkpoint.hpp"
#include "nn/layers.hpp"
#include "pp/pipeline.hpp"
#include "tp/linear1d.hpp"
#include "zero/chunk.hpp"
#include "zero/hybrid_adam.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace pp = ca::pp;
namespace data = ca::data;
namespace engine = ca::engine;
namespace optim = ca::optim;
namespace zero = ca::zero;
namespace obs = ca::obs;

namespace {

/// A cluster of tiny-memory devices for functional OOM tests.
sim::Topology tiny_gpus(int n, std::int64_t capacity_bytes) {
  sim::GpuModel gpu{"tiny", capacity_bytes, 1e12, 1e12};
  return sim::Topology::uniform(n, 100e9, gpu);
}

struct World {
  explicit World(core::Config cfg, double bw = 100e9)
      : cluster(sim::Topology::uniform(cfg.world_size(), bw)),
        backend(cluster),
        ctx(backend, cfg) {}
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

/// Scoped environment variable (restores by unsetting on destruction).
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  const char* name_;
};

}  // namespace

TEST(FailureInjection, FunctionalRangeTestHitsOom) {
  // the paper's protocol: grow the batch until out-of-memory; the simulated
  // devices enforce their capacity and the OOM surfaces as sim::OomError.
  const int p = 2;
  const std::int64_t h = 32;
  std::int64_t max_batch = 0;
  for (std::int64_t b = 8;; b += 8) {
    sim::Cluster cluster(tiny_gpus(p, 64 << 10));  // 64 KiB devices
    col::Backend backend(cluster);
    core::Config cfg;
    cfg.tensor_parallel_size = p;
    cfg.tensor_mode = core::TpMode::k1d;
    core::ParallelContext ctx(backend, cfg);
    try {
      auto x = t::randn(t::Shape{b, h}, 1);
      cluster.run([&](int g) {
        tp::Env env{&ctx, g};
        tp::Linear1DCol l1(env, "a", h, h, 2, false);
        tp::Linear1DRow l2(env, "b", h, h, 3);
        auto y = l2.forward(l1.forward(x));
        (void)y;
        l1.backward(l2.backward(x));
      });
      max_batch = b;
    } catch (const sim::OomError& e) {
      EXPECT_GT(e.requested(), 0);
      EXPECT_LE(e.in_use(), e.capacity());
      break;
    }
    ASSERT_LT(b, 10000) << "never hit OOM";
  }
  EXPECT_GT(max_batch, 0);  // something fit before the wall
}

TEST(FailureInjection, OomDoesNotCorruptTracker) {
  sim::MemoryTracker mem("gpu", 100);
  mem.alloc(60);
  EXPECT_THROW(mem.alloc(50), sim::OomError);
  EXPECT_EQ(mem.current(), 60);  // failed alloc not recorded
  mem.free(60);
  EXPECT_EQ(mem.current(), 0);
  EXPECT_NO_THROW(mem.alloc(100));  // full capacity usable again
}

TEST(FailureInjection, ChunkMoveToFullDeviceThrows) {
  sim::Cluster cluster(tiny_gpus(1, 1000));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    ca::zero::ChunkManager cm(env, 800, ca::zero::Placement::kHost);
    cm.append("a", 800);
    env.mem().alloc(500);  // pre-existing pressure
    EXPECT_THROW(cm.fetch(0), sim::OomError);
    // the chunk stays consistently on the host after the failed move
    EXPECT_EQ(cm.host_bytes(), 800);
    EXPECT_EQ(cm.device_bytes(), 0);
  });
}

TEST(FailureInjection, WorkerExceptionPropagatesWithMessage) {
  sim::Cluster cluster(sim::Topology::uniform(4, 1e9));
  try {
    cluster.run([](int rank) {
      if (rank == 2) throw std::runtime_error("injected fault on rank 2");
    });
    FAIL() << "expected propagation";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected fault on rank 2");
  }
}

TEST(FailureInjection, PipelineWithFewerMicrosThanStages) {
  // M=1 on a 2-stage pipeline: pure fill/drain, still correct gradients.
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.pipeline_parallel_size = 2;
  core::ParallelContext ctx(backend, cfg);
  // activations cross stages in the comm wire dtype; pin fp32 so the
  // serial comparison below stays exact under the CA_COMM_DTYPE=bf16 sweep
  ctx.set_comm_dtype(t::Dtype::kF32);

  auto x = t::randn(t::Shape{2, 4}, 5);
  const std::vector<std::int64_t> labels{0, 1};
  nn::Linear r0("s0", 4, 6, 6), r1("s1", 6, 2, 7);
  auto y = r1.forward(r0.forward(x));
  t::Tensor dl;
  const float ref_loss = t::cross_entropy(y, labels, dl);
  r0.backward(r1.backward(dl));

  std::vector<t::Tensor> grads(2);
  float loss = 0.0f;
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear stage(g == 0 ? "s0" : "s1", g == 0 ? 4 : 6, g == 0 ? 6 : 2,
                     g == 0 ? 6 : 7);
    pp::Pipeline pipe(env, stage, t::Shape{2, g == 0 ? 4 : 6},
                      pp::Schedule::kOneFOneB);
    std::vector<t::Tensor> inputs{x};
    const float l =
        pipe.train_step(1, g == 0 ? std::span<const t::Tensor>(inputs)
                                  : std::span<const t::Tensor>{},
                        [&](const t::Tensor& yy, t::Tensor& dy, int) {
                          t::Tensor d2;
                          const float lv = t::cross_entropy(yy, labels, d2);
                          dy = d2;
                          return lv;
                        });
    grads[static_cast<std::size_t>(g)] = stage.weight().grad.clone();
    if (g == 1) loss = l;
  });
  EXPECT_NEAR(loss, ref_loss, 1e-6f);
  EXPECT_TRUE(t::allclose(grads[0], r0.weight().grad, 1e-5f));
  EXPECT_TRUE(t::allclose(grads[1], r1.weight().grad, 1e-5f));
}

TEST(FailureInjection, ScopedAllocReleasesOnException) {
  sim::MemoryTracker mem("gpu", 1000);
  try {
    sim::ScopedAlloc a(mem, 400);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(mem.current(), 0);  // RAII released despite the unwind
}

// ======================= fault matrix ==========================================
// Injected faults against the collective watchdog, the numeric guard, and
// checkpoint/restore (DESIGN.md section 7).

TEST(FaultMatrix, FailStopBlockingCollectiveSurvivorsTimeout) {
  // Rank 2 dies mid-run; the three survivors blocked at the next rendezvous
  // must each raise a structured CommTimeoutError — not hang — and the region
  // rethrows the root cause (the DeviceFailure, not a survivor's timeout).
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  sim::FaultPlan plan;
  plan.fail_stop_at(2, 0.35);
  plan.watchdog = 0.5;
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  auto& world = backend.world();

  std::array<std::optional<sim::CommTimeoutError>, 4> survivor;
  try {
    cluster.run([&](int g) {
      std::vector<float> buf(256, 1.0f);
      for (;;) {
        cluster.device(g).advance_clock(0.2);
        try {
          world.all_reduce(g, buf);
        } catch (const sim::CommTimeoutError& e) {
          survivor[static_cast<std::size_t>(g)] = e;
          return;  // survivor handled the failure; only rank 2's error escapes
        }
      }
    });
    FAIL() << "expected the dead rank's DeviceFailure to propagate";
  } catch (const sim::DeviceFailure& e) {
    EXPECT_EQ(e.rank(), 2);
  }
  for (int g : {0, 1, 3}) {
    const auto& e = survivor[static_cast<std::size_t>(g)];
    ASSERT_TRUE(e.has_value()) << "rank " << g << " saw no timeout";
    EXPECT_EQ(e->rank(), g);
    EXPECT_EQ(e->group(), "world");
    EXPECT_EQ(e->op(), "all_reduce");
    EXPECT_EQ(e->bytes(), 256 * 4);
    EXPECT_DOUBLE_EQ(e->elapsed(), 0.5);  // exactly the watchdog budget
    EXPECT_NE(std::string(e->what()).find("fail-stop fault on rank 2"),
              std::string::npos);
  }
  EXPECT_FALSE(survivor[2].has_value());
  EXPECT_EQ(cluster.fault_state().dead_ranks(), std::vector<int>{2});
}

TEST(FaultMatrix, FailStopAsyncCollectiveSurvivorsTimeout) {
  // Same fail-stop, but the survivors are inside wait() on deferred async
  // ops when the peer dies: the drain's rendezvous must abort too.
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  sim::FaultPlan plan;
  plan.fail_stop_at(3, 0.1);
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  auto& world = backend.world();

  std::array<std::optional<sim::CommTimeoutError>, 4> survivor;
  try {
    cluster.run([&](int g) {
      std::vector<float> a(128, 1.0f), b(128, 2.0f);
      auto h1 = world.all_reduce_async(g, a);
      auto h2 = world.all_reduce_async(g, b);
      cluster.device(g).advance_clock(0.2);  // everyone is past the fail point
      try {
        h1.wait();
        h2.wait();
      } catch (const sim::CommTimeoutError& e) {
        survivor[static_cast<std::size_t>(g)] = e;
      }
    });
    FAIL() << "expected the dead rank's DeviceFailure to propagate";
  } catch (const sim::DeviceFailure& e) {
    EXPECT_EQ(e.rank(), 3);
  }
  for (int g : {0, 1, 2}) {
    const auto& e = survivor[static_cast<std::size_t>(g)];
    ASSERT_TRUE(e.has_value()) << "rank " << g << " saw no timeout";
    EXPECT_EQ(e->op(), "all_reduce");
    EXPECT_EQ(e->bytes(), 128 * 4);
  }
}

TEST(FaultMatrix, FailStopDuringTrainingStepReportsRootCause) {
  // Step-triggered death inside the DP engine (bucketed grad sync): the
  // survivor unwinds out of Engine::step with CommTimeoutError, the region
  // reports the DeviceFailure with its rank and step.
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  sim::FaultPlan plan;
  plan.fail_stop(1, 2);
  w.cluster.install_faults(plan);
  data::SyntheticClassification ds(256, 6, 3, 91);

  std::optional<sim::CommTimeoutError> survivor;
  std::int64_t survivor_steps = -1;
  try {
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 92));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<optim::Adam>(net.parameters(),
                                        optim::Adam::Hyper{0.01f}));
      data::DataLoader loader(ds, 8, g, 2);
      try {
        for (int s = 0; s < 4; ++s) {
          auto batch = loader.next(s);
          eng->zero_grad();
          auto out = eng->forward(batch.x);
          eng->criterion(out, batch.labels);
          eng->backward();
          eng->step();
        }
      } catch (const sim::CommTimeoutError& e) {
        survivor = e;
        survivor_steps = eng->steps_taken();
        return;
      }
    });
    FAIL() << "expected DeviceFailure";
  } catch (const sim::DeviceFailure& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.step(), 2);
  }
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->rank(), 0);
  EXPECT_EQ(survivor->op(), "all_reduce");
  EXPECT_EQ(survivor_steps, 3);  // two full steps + the aborted third
}

TEST(FaultMatrix, P2pRendezvousWithDeadPeerTimesOut) {
  // A blocked p2p endpoint whose peer died must unwind with CommTimeoutError
  // (group "p2p", op send/recv), both for a pending recv and a sync send.
  {
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    cluster.fault_state().set_watchdog(0.25);
    col::Backend backend(cluster);
    std::optional<sim::CommTimeoutError> err;
    try {
      cluster.run([&](int g) {
        if (g == 1) throw std::runtime_error("rank 1 crashed");
        std::vector<float> buf(64);
        try {
          backend.channel(1, 0).recv(buf);  // sender is dead: never arrives
        } catch (const sim::CommTimeoutError& e) {
          err = e;
        }
      });
      FAIL() << "expected the crash to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank 1 crashed");
    }
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->rank(), 0);
    EXPECT_EQ(err->group(), "p2p");
    EXPECT_EQ(err->op(), "recv");
    EXPECT_DOUBLE_EQ(err->elapsed(), 0.25);
  }
  {
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    col::Backend backend(cluster);
    std::optional<sim::CommTimeoutError> err;
    try {
      cluster.run([&](int g) {
        if (g == 1) throw std::runtime_error("rank 1 crashed");
        std::vector<float> buf(64, 1.0f);
        try {
          backend.channel(0, 1).send(buf);  // receiver is dead: never consumed
        } catch (const sim::CommTimeoutError& e) {
          err = e;
        }
      });
      FAIL() << "expected the crash to propagate";
    } catch (const std::runtime_error&) {
    }
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->op(), "send");
  }
}

TEST(FaultMatrix, StragglerSlowsClockButKeepsLossesBitIdentical) {
  // A transient compute straggler is a performance fault, not a correctness
  // fault: the trained losses stay bit-identical, only sim-time stretches.
  auto run_training = [](double factor) {
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    if (factor > 1.0) {
      sim::FaultPlan plan;
      plan.straggler(1, 0.0, 1e9, factor);
      cluster.install_faults(plan);
    }
    col::Backend backend(cluster);
    core::Config cfg;
    cfg.data_parallel_size = 2;
    core::ParallelContext ctx(backend, cfg);
    data::SyntheticClassification ds(256, 6, 3, 101);
    std::vector<std::vector<float>> losses(2);
    cluster.run([&](int g) {
      tp::Env env{&ctx, g};
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 102));
      auto eng = engine::initialize(
          env, net, std::make_unique<optim::Sgd>(net.parameters(), 0.1f));
      data::DataLoader loader(ds, 8, g, 2);
      for (int s = 0; s < 4; ++s) {
        env.dev().compute_fp32(1e9, "step");  // the compute the fault stretches
        auto batch = loader.next(s);
        eng->zero_grad();
        auto out = eng->forward(batch.x);
        losses[static_cast<std::size_t>(g)].push_back(
            eng->criterion(out, batch.labels));
        eng->backward();
        eng->step();
      }
    });
    return std::pair{losses, cluster.max_clock()};
  };
  const auto base = run_training(1.0);
  const auto slow = run_training(4.0);
  for (int g = 0; g < 2; ++g) {
    ASSERT_EQ(base.first[static_cast<std::size_t>(g)].size(),
              slow.first[static_cast<std::size_t>(g)].size());
    for (std::size_t s = 0; s < base.first[0].size(); ++s) {
      ASSERT_EQ(base.first[static_cast<std::size_t>(g)][s],
                slow.first[static_cast<std::size_t>(g)][s])
          << "rank " << g << " step " << s;
    }
  }
  EXPECT_GT(slow.second, base.second);  // straggling shows up only in time
}

TEST(FaultMatrix, LinkDegradeStretchesCommButPreservesData) {
  auto run_all_reduce = [](bool degrade) {
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    if (degrade) {
      sim::FaultPlan plan;
      plan.degrade_links(0.0, 1e9, 8.0);
      cluster.install_faults(plan);
    }
    col::Backend backend(cluster);
    cluster.run([&](int g) {
      std::vector<float> buf(1 << 16, static_cast<float>(g + 1));
      backend.world().all_reduce(g, buf);
      EXPECT_EQ(buf[0], 3.0f);  // 1 + 2, unaffected by the slow fabric
    });
    return cluster.max_clock();
  };
  const double fast = run_all_reduce(false);
  const double slow = run_all_reduce(true);
  EXPECT_GT(slow, fast);
}

TEST(FaultMatrix, TransientCommRetriesThenSucceeds) {
  // Collectives starting inside the transient window back off (base 0.25,
  // then decorrelated jitter >= base) until the attempt lands outside it;
  // the data is intact and the backoff shows up on the fault trace lane.
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  sim::FaultPlan plan;
  plan.transient_comm(0.0, 0.4);  // retry_base 0.25: succeeds on attempt 3
  cluster.install_faults(plan);
  cluster.enable_tracing();
  col::Backend backend(cluster);
  cluster.run([&](int g) {
    std::vector<float> buf(256, static_cast<float>(g + 1));
    backend.world().all_reduce(g, buf);
    EXPECT_EQ(buf[0], 3.0f);
  });
  // Retry 1 charges exactly base (0.25, still inside the window), retry 2
  // draws jitter in [base, 3*base) and lands past 0.4 — at least 0.5 total.
  EXPECT_GE(cluster.max_clock(), 0.5);
  bool saw_retry_span = false;
  for (const auto& e : cluster.tracer()->rank(0).events()) {
    if (e.cat == obs::Category::kFault &&
        e.name.find(".retry") != std::string::npos) {
      saw_retry_span = true;
    }
  }
  EXPECT_TRUE(saw_retry_span);
}

TEST(FaultMatrix, TransientBackoffDecorrelatedButSeeded) {
  // Two collectives hitting the same window from different start times must
  // draw different backoff schedules (no synchronized retry storm), while
  // the same (seed, start time) always reproduces the same schedule and a
  // different CA_FAULT_SEED moves it.
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.max_retries = 8;
  plan.transient_comm(0.0, 2.0);
  sim::FaultInjector fi(plan);

  const auto a = fi.transient_delay(0.0);
  const auto b = fi.transient_delay(0.125);
  ASSERT_FALSE(a.gave_up);
  ASSERT_FALSE(b.gave_up);
  ASSERT_GE(a.retries, 3);  // enough attempts for jitter to kick in
  EXPECT_NE(a.delay, b.delay);  // schedules decorrelate by start time
  // Reproducible: identical arguments yield a bit-identical schedule.
  const auto a2 = fi.transient_delay(0.0);
  EXPECT_EQ(std::memcmp(&a.delay, &a2.delay, sizeof(double)), 0);
  EXPECT_EQ(a.retries, a2.retries);
  // Seed-sensitive: a different seed shifts the jittered attempts.
  sim::FaultPlan other = plan;
  other.seed = 8;
  const auto c = sim::FaultInjector(other).transient_delay(0.0);
  EXPECT_NE(a.delay, c.delay);
  // Every backoff respects the floor: k retries cost at least k * base.
  EXPECT_GE(a.delay, plan.retry_base * a.retries);
}

TEST(FaultMatrix, TransientCommGivesUpSymmetrically) {
  // A fabric fault outlasting the retry budget promotes to CommTimeoutError
  // on EVERY member (same verdict from the symmetric start time) — nobody
  // hangs, and no rank is recorded as dead.
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  sim::FaultPlan plan;
  plan.transient_comm(0.0, 100.0);
  plan.max_retries = 3;
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  try {
    cluster.run([&](int g) {
      std::vector<float> buf(64, 1.0f);
      backend.world().all_reduce(g, buf);
    });
    FAIL() << "expected CommTimeoutError";
  } catch (const sim::CommTimeoutError& e) {
    EXPECT_EQ(e.op(), "all_reduce");
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos);
  }
  EXPECT_TRUE(cluster.fault_state().dead_ranks().empty());
}

TEST(FaultMatrix, NanSkipMatchesManualSkipTrajectory) {
  // NaN injection on ONE rank's gradients must skip the optimizer update on
  // EVERY rank (consensus), leaving a trajectory bit-identical to a run that
  // deliberately skips the same step.
  const int steps = 5;
  auto run_training = [&](bool inject) {
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    if (inject) {
      sim::FaultPlan plan;
      plan.corrupt_grads(1, 2);
      cluster.install_faults(plan);
    }
    col::Backend backend(cluster);
    core::Config cfg;
    cfg.data_parallel_size = 2;
    core::ParallelContext ctx(backend, cfg);
    data::SyntheticClassification ds(256, 6, 3, 111);
    std::vector<std::vector<float>> losses(2);
    std::vector<t::Tensor> weights(2);
    std::array<std::int64_t, 2> skipped{};
    cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 112));
      engine::Engine::Options opts;
      opts.grad_sync = engine::Engine::Options::GradSync::kSerial;
      auto eng = engine::initialize(
          tp::Env{&ctx, g}, net,
          std::make_unique<optim::Adam>(net.parameters(),
                                        optim::Adam::Hyper{0.01f}),
          opts);
      data::DataLoader loader(ds, 8, g, 2);
      for (int s = 0; s < steps; ++s) {
        auto batch = loader.next(s);
        eng->zero_grad();
        auto out = eng->forward(batch.x);
        losses[static_cast<std::size_t>(g)].push_back(
            eng->criterion(out, batch.labels));
        eng->backward();
        if (!inject && s == 2) continue;  // the reference skips by hand
        eng->step();
      }
      skipped[static_cast<std::size_t>(g)] = eng->skipped_steps();
      weights[static_cast<std::size_t>(g)] = net.parameters()[0]->value.clone();
    });
    return std::tuple{losses, weights, skipped};
  };
  const auto [ref_losses, ref_w, ref_skipped] = run_training(false);
  const auto [inj_losses, inj_w, inj_skipped] = run_training(true);

  EXPECT_EQ(ref_skipped, (std::array<std::int64_t, 2>{0, 0}));
  // the guard skipped on BOTH ranks although only rank 1 was corrupted
  EXPECT_EQ(inj_skipped, (std::array<std::int64_t, 2>{1, 1}));
  for (int g = 0; g < 2; ++g) {
    for (int s = 0; s < steps; ++s) {
      ASSERT_EQ(ref_losses[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)],
                inj_losses[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)])
          << "rank " << g << " step " << s;
    }
    EXPECT_EQ(t::max_diff(ref_w[static_cast<std::size_t>(g)],
                          inj_w[static_cast<std::size_t>(g)]),
              0.0f);
  }
  EXPECT_EQ(t::max_diff(inj_w[0], inj_w[1]), 0.0f);  // replicas never diverged
}

TEST(FaultMatrix, ZeroNanSkipIsSymmetricAcrossRanks) {
  // Same contract under ZeRO, where the guard must fire BEFORE the grad
  // reduce (a NaN entering the reduce would poison every rank's shard).
  const int steps = 3;
  // serial Adam reference that skips step 1 by hand
  data::SyntheticClassification ds(512, 6, 3, 61);
  nn::Linear ref_model("m", 6, 3, 62);
  optim::Adam ref_opt(ref_model.parameters(), {});
  for (int s = 0; s < steps; ++s) {
    auto x = ds.batch_features(s * 8, 8);
    auto y = ds.batch_labels(s * 8, 8);
    ref_opt.zero_grad();
    auto out = ref_model.forward(x);
    t::Tensor dl;
    t::cross_entropy(out, y, dl);
    ref_model.backward(dl);
    if (s != 1) ref_opt.step();
  }

  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  // Trajectory is compared against the serial Adam reference: fp32 wire.
  w.ctx.set_comm_dtype(t::Dtype::kF32);
  sim::FaultPlan plan;
  plan.corrupt_grads(0, 1);
  w.cluster.install_faults(plan);
  std::vector<t::Tensor> weights(2);
  std::array<std::int64_t, 2> skipped{};
  w.cluster.run([&](int g) {
    nn::Linear model("m", 6, 3, 62);
    engine::ZeroEngine eng(w.env(g), model, {}, /*stage=*/2);
    for (int s = 0; s < steps; ++s) {
      auto x = ds.batch_features(s * 8, 8);
      auto y = ds.batch_labels(s * 8, 8);
      eng.zero_grad();
      auto out = eng.forward(x);
      eng.criterion(out, y);
      eng.backward();
      eng.step();
    }
    skipped[static_cast<std::size_t>(g)] = eng.skipped_steps();
    eng.optimizer().gather_params();
    weights[static_cast<std::size_t>(g)] = model.weight().value.clone();
  });
  EXPECT_EQ(skipped, (std::array<std::int64_t, 2>{1, 1}));
  EXPECT_TRUE(t::allclose(weights[0], ref_model.weight().value, 1e-5f));
  EXPECT_EQ(t::max_diff(weights[0], weights[1]), 0.0f);
}

TEST(FaultMatrix, CheckpointKillRestoreBitIdenticalAdam) {
  // Train 6 steps uninterrupted; train 4 steps with a periodic checkpoint and
  // "kill" the job; restore into a fresh world and finish. The surviving
  // steps must see exactly the batches — and produce exactly the losses and
  // weights — of the uninterrupted run.
  const std::string path = ::testing::TempDir() + "ca_ckpt_adam.bin";
  core::Config cfg;
  cfg.data_parallel_size = 2;
  data::SyntheticClassification ds(512, 6, 3, 121);

  std::vector<float> ref_losses;
  t::Tensor ref_w;
  {
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 122));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<optim::Adam>(net.parameters(),
                                        optim::Adam::Hyper{0.01f}));
      engine::Trainer trainer(*eng);
      auto& hist =
          trainer.register_hook(std::make_unique<engine::LossHistoryHook>());
      data::DataLoader loader(ds, 8, g, 2);
      trainer.fit(loader, 1, 6);
      if (g == 0) {
        ref_losses = hist.losses();
        ref_w = net.parameters()[0]->value.clone();
      }
    });
  }
  {
    World w(cfg);  // the doomed run: checkpoint every 2 steps, die after 4
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 122));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<optim::Adam>(net.parameters(),
                                        optim::Adam::Hyper{0.01f}));
      engine::Trainer trainer(*eng);
      auto& ck = trainer.register_hook(std::make_unique<engine::CheckpointHook>(
          w.env(g), net, eng->optimizer(), path, 2));
      data::DataLoader loader(ds, 8, g, 2);
      trainer.fit(loader, 1, 4);
      EXPECT_EQ(ck.saves(), 2);  // after steps 2 and 4
    });
    EXPECT_EQ(engine::checkpoint_step(path), 4);
  }
  {
    World w(cfg);  // recovery: restore and run the remaining schedule
    std::vector<float> res_losses;
    t::Tensor res_w;
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 122));
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<optim::Adam>(net.parameters(),
                                        optim::Adam::Hyper{0.01f}));
      const std::int64_t step =
          engine::load_checkpoint(w.env(g), net, eng->optimizer(), path);
      EXPECT_EQ(step, 4);
      eng->set_step_count(step);
      engine::Trainer trainer(*eng);
      auto& hist =
          trainer.register_hook(std::make_unique<engine::LossHistoryHook>());
      data::DataLoader loader(ds, 8, g, 2);
      trainer.fit(loader, 1, 6, /*start_step=*/static_cast<int>(step));
      if (g == 0) {
        res_losses = hist.losses();
        res_w = net.parameters()[0]->value.clone();
      }
    });
    ASSERT_EQ(ref_losses.size(), 6u);
    ASSERT_EQ(res_losses.size(), 2u);
    ASSERT_EQ(res_losses[0], ref_losses[4]);  // bit-identical resume
    ASSERT_EQ(res_losses[1], ref_losses[5]);
    EXPECT_EQ(t::max_diff(res_w, ref_w), 0.0f);
  }
}

TEST(FaultMatrix, CheckpointRestoreHybridAdam) {
  // HybridAdam keeps its moments on the CPU pool; its serialized state must
  // restore bit-identically all the same.
  const std::string path = ::testing::TempDir() + "ca_ckpt_hybrid.bin";
  core::Config cfg;  // single rank
  data::SyntheticClassification ds(256, 6, 3, 131);

  std::vector<float> ref_losses;
  t::Tensor ref_w;
  {
    World w(cfg);
    w.cluster.run([&](int g) {
      (void)g;
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 132));
      auto eng = engine::initialize(
          w.env(0), net,
          std::make_unique<zero::HybridAdam>(w.env(0), net.parameters(),
                                             optim::Adam::Hyper{0.01f}));
      for (int s = 0; s < 4; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng->zero_grad();
        auto out = eng->forward(x);
        ref_losses.push_back(eng->criterion(out, y));
        eng->backward();
        eng->step();
        if (s == 1) {
          engine::save_checkpoint(w.env(0), net, eng->optimizer(), 2, path);
        }
      }
      ref_w = net.parameters()[0]->value.clone();
    });
  }
  {
    World w(cfg);
    w.cluster.run([&](int g) {
      (void)g;
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 132));
      auto eng = engine::initialize(
          w.env(0), net,
          std::make_unique<zero::HybridAdam>(w.env(0), net.parameters(),
                                             optim::Adam::Hyper{0.01f}));
      const std::int64_t step =
          engine::load_checkpoint(w.env(0), net, eng->optimizer(), path);
      ASSERT_EQ(step, 2);
      eng->set_step_count(step);
      for (int s = 2; s < 4; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng->zero_grad();
        auto out = eng->forward(x);
        ASSERT_EQ(eng->criterion(out, y),
                  ref_losses[static_cast<std::size_t>(s)]);
        eng->backward();
        eng->step();
      }
      EXPECT_EQ(t::max_diff(net.parameters()[0]->value, ref_w), 0.0f);
    });
  }
}

TEST(FaultMatrix, ZeroCheckpointRestoreBitIdenticalStage3) {
  // ZeRO stage 3: parameter values live only in the shards / the optimizer's
  // gathered masters. Save mid-run, restore into a fresh world, finish —
  // losses and final weights bit-identical to the uninterrupted run.
  const std::string path = ::testing::TempDir() + "ca_ckpt_zero3.bin";
  core::Config cfg;
  cfg.data_parallel_size = 2;
  data::SyntheticClassification ds(512, 6, 3, 61);

  std::vector<float> tail_losses;  // losses after the save point (rank 0)
  t::Tensor ref_w;
  {
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 6, 3, 62);
      engine::ZeroEngine eng(w.env(g), model, {}, /*stage=*/3);
      for (int s = 0; s < 4; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng.zero_grad();
        auto out = eng.forward(x);
        const float loss = eng.criterion(out, y);
        eng.backward();
        eng.step();
        if (s == 1) {
          engine::save_checkpoint(w.env(g), model, eng.optimizer(),
                                  eng.steps_taken(), path);
        }
        if (s >= 2 && g == 0) tail_losses.push_back(loss);
      }
      eng.optimizer().gather_params();
      if (g == 0) ref_w = model.weight().value.clone();
    });
  }
  {
    World w(cfg);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 6, 3, 62);
      engine::ZeroEngine eng(w.env(g), model, {}, /*stage=*/3);
      const std::int64_t step =
          engine::load_checkpoint(w.env(g), model, eng.optimizer(), path);
      ASSERT_EQ(step, 2);
      ASSERT_EQ(eng.optimizer().steps_taken(), 2);  // Adam t restored
      eng.set_step_count(step);
      for (int s = 2; s < 4; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng.zero_grad();
        auto out = eng.forward(x);
        const float loss = eng.criterion(out, y);
        eng.backward();
        eng.step();
        if (g == 0) {
          ASSERT_EQ(loss, tail_losses[static_cast<std::size_t>(s - 2)]);
        }
      }
      eng.optimizer().gather_params();
      if (g == 0) {
        EXPECT_EQ(t::max_diff(model.weight().value, ref_w), 0.0f);
      }
    });
  }
}

TEST(FaultMatrix, ZeroCheckpointReshardsOnShrunkWorld) {
  // Checkpoints are world-size-agnostic: written from 4 DP ranks, restored
  // onto the 2 survivors. The new ZeroOptimizer re-slices the full-form
  // state by its own layout, and training continues on the serial-Adam
  // trajectory.
  const std::string path = ::testing::TempDir() + "ca_ckpt_zero_shrunk.bin";
  data::SyntheticClassification ds(512, 6, 3, 61);
  // serial Adam reference, 4 uninterrupted steps
  nn::Linear ref_model("m", 6, 3, 62);
  optim::Adam ref_opt(ref_model.parameters(), {});
  for (int s = 0; s < 4; ++s) {
    auto x = ds.batch_features(s * 8, 8);
    auto y = ds.batch_labels(s * 8, 8);
    ref_opt.zero_grad();
    auto out = ref_model.forward(x);
    t::Tensor dl;
    t::cross_entropy(out, y, dl);
    ref_model.backward(dl);
    ref_opt.step();
  }
  {
    core::Config cfg;
    cfg.data_parallel_size = 4;  // the original cluster
    World w(cfg);
    // Compared against the serial Adam trajectory below: fp32 wire.
    w.ctx.set_comm_dtype(t::Dtype::kF32);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 6, 3, 62);
      engine::ZeroEngine eng(w.env(g), model, {}, /*stage=*/2);
      for (int s = 0; s < 2; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng.zero_grad();
        auto out = eng.forward(x);
        eng.criterion(out, y);
        eng.backward();
        eng.step();
      }
      engine::save_checkpoint(w.env(g), model, eng.optimizer(),
                              eng.steps_taken(), path);
    });
  }
  {
    core::Config cfg;
    cfg.data_parallel_size = 2;  // one device lost; rebuild smaller
    World w(cfg);
    w.ctx.set_comm_dtype(t::Dtype::kF32);
    std::vector<t::Tensor> weights(2);
    w.cluster.run([&](int g) {
      nn::Linear model("m", 6, 3, 62);
      engine::ZeroEngine eng(w.env(g), model, {}, /*stage=*/2);
      const std::int64_t step =
          engine::load_checkpoint(w.env(g), model, eng.optimizer(), path);
      ASSERT_EQ(step, 2);
      eng.set_step_count(step);
      for (int s = 2; s < 4; ++s) {
        auto x = ds.batch_features(s * 8, 8);
        auto y = ds.batch_labels(s * 8, 8);
        eng.zero_grad();
        auto out = eng.forward(x);
        eng.criterion(out, y);
        eng.backward();
        eng.step();
      }
      eng.optimizer().gather_params();
      weights[static_cast<std::size_t>(g)] = model.weight().value.clone();
    });
    EXPECT_TRUE(t::allclose(weights[0], ref_model.weight().value, 1e-4f));
    EXPECT_EQ(t::max_diff(weights[0], weights[1]), 0.0f);
  }
}

TEST(FaultMatrix, OomErrorCarriesPoolRankAndBytes) {
  sim::MemoryTracker mem("gpu3", 1000, /*rank=*/3);
  mem.alloc(600);
  try {
    mem.alloc(600);
    FAIL() << "expected OomError";
  } catch (const sim::OomError& e) {
    EXPECT_EQ(e.pool(), "gpu3");
    EXPECT_EQ(e.rank(), 3);
    EXPECT_EQ(e.requested(), 600);
    EXPECT_EQ(e.available(), 400);
    const std::string what = e.what();
    EXPECT_NE(what.find("pool 'gpu3'"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
    EXPECT_NE(what.find("requested 600"), std::string::npos) << what;
    EXPECT_NE(what.find("400"), std::string::npos) << what;
  }
}

namespace {

struct ThrowingInner : nn::Module {
  bool throw_forward = false;
  bool throw_backward = false;
  t::Tensor forward(const t::Tensor& x) override {
    if (throw_forward) throw std::runtime_error("inner forward fault");
    return x.clone();
  }
  t::Tensor backward(const t::Tensor& dy) override {
    if (throw_backward) throw std::runtime_error("inner backward fault");
    return dy.clone();
  }
};

}  // namespace

TEST(FaultMatrix, ActivationCheckpointNoLeakOnThrowingInner) {
  auto inner = std::make_unique<ThrowingInner>();
  auto* raw = inner.get();
  nn::Checkpoint ck(std::move(inner));
  auto x = t::randn(t::Shape{4, 4}, 141);

  // backward (recompute path) throws: the held input must still be released
  auto y = ck.forward(x);
  EXPECT_GT(ck.held_bytes(), 0);
  raw->throw_backward = true;
  EXPECT_THROW(ck.backward(y), std::runtime_error);
  EXPECT_EQ(ck.held_bytes(), 0);

  // forward throws: nothing is saved for the failed step
  raw->throw_backward = false;
  raw->throw_forward = true;
  EXPECT_THROW(ck.forward(x), std::runtime_error);
  EXPECT_EQ(ck.held_bytes(), 0);
}

TEST(FaultMatrix, FromEnvParsesFullPlan) {
  ASSERT_FALSE(sim::FaultPlan::from_env().has_value());
  {
    EnvGuard e1("CA_FAULT_FAILSTOP", "2@5");
    EnvGuard e2("CA_FAULT_STRAGGLER", "1@0.5:2.0:3.0");
    EnvGuard e3("CA_FAULT_LINK", "1.0:0.5:2.0");
    EnvGuard e4("CA_FAULT_NAN", "0@3");
    EnvGuard e5("CA_FAULT_TRANSIENT", "0.1:0.2");
    EnvGuard e6("CA_FAULT_WATCHDOG", "0.75");
    EnvGuard e7("CA_FAULT_RETRY_BASE", "0.5");
    EnvGuard e8("CA_FAULT_RETRIES", "7");
    EnvGuard e9("CA_FAULT_SEED", "42");
    auto plan = sim::FaultPlan::from_env();
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->specs.size(), 5u);
    EXPECT_EQ(plan->specs[0].kind, sim::FaultKind::kFailStop);
    EXPECT_EQ(plan->specs[0].rank, 2);
    EXPECT_EQ(plan->specs[0].step, 5);
    EXPECT_EQ(plan->specs[1].kind, sim::FaultKind::kStraggler);
    EXPECT_EQ(plan->specs[1].rank, 1);
    EXPECT_DOUBLE_EQ(plan->specs[1].at, 0.5);
    EXPECT_DOUBLE_EQ(plan->specs[1].duration, 2.0);
    EXPECT_DOUBLE_EQ(plan->specs[1].factor, 3.0);
    EXPECT_EQ(plan->specs[2].kind, sim::FaultKind::kLinkDegrade);
    EXPECT_EQ(plan->specs[3].kind, sim::FaultKind::kGradCorrupt);
    EXPECT_EQ(plan->specs[3].rank, 0);
    EXPECT_EQ(plan->specs[3].step, 3);
    EXPECT_EQ(plan->specs[4].kind, sim::FaultKind::kTransientComm);
    EXPECT_DOUBLE_EQ(plan->specs[4].at, 0.1);
    EXPECT_DOUBLE_EQ(plan->specs[4].duration, 0.2);
    EXPECT_DOUBLE_EQ(plan->watchdog, 0.75);
    EXPECT_DOUBLE_EQ(plan->retry_base, 0.5);
    EXPECT_EQ(plan->max_retries, 7);
    EXPECT_EQ(plan->seed, 42u);
    const double j = plan->jitter(3);
    EXPECT_GE(j, 0.0);
    EXPECT_LT(j, 1.0);
    EXPECT_EQ(plan->jitter(3), j);  // seeded stream is reproducible
  }
  {
    EnvGuard e("CA_FAULT_FAILSTOP", "1@t2.5");  // clock-triggered form
    auto plan = sim::FaultPlan::from_env();
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->specs.size(), 1u);
    EXPECT_EQ(plan->specs[0].step, -1);
    EXPECT_DOUBLE_EQ(plan->specs[0].at, 2.5);
  }
  ASSERT_FALSE(sim::FaultPlan::from_env().has_value());
}

TEST(FaultMatrix, LaunchArmsInjectorAndWatchdogPrecedence) {
  {
    EnvGuard e("CA_FAULT_NAN", "0@1");
    auto world = core::launch("data.size=2 fault.watchdog=0.25");
    ASSERT_NE(world->cluster().fault_injector(), nullptr);
    EXPECT_EQ(world->cluster().fault_injector()->plan().specs.size(), 1u);
    // env set no watchdog: the config key applies
    EXPECT_DOUBLE_EQ(world->cluster().fault_state().watchdog(), 0.25);
    {
      EnvGuard w("CA_FAULT_WATCHDOG", "0.125");  // env wins over config
      auto world2 = core::launch("data.size=2 fault.watchdog=0.25");
      EXPECT_DOUBLE_EQ(world2->cluster().fault_state().watchdog(), 0.125);
    }
  }
  // no CA_FAULT_* at all: injector off, config watchdog still armed
  auto world3 = core::launch("data.size=2 fault.watchdog=0.5");
  EXPECT_EQ(world3->cluster().fault_injector(), nullptr);
  EXPECT_DOUBLE_EQ(world3->cluster().fault_state().watchdog(), 0.5);
}

TEST(FaultMatrix, ConfigKeysParsedAndValidated) {
  const auto cfg = core::parse_config(
      "fault.watchdog=0.5 checkpoint.interval=3 checkpoint.dir=/tmp/ck");
  EXPECT_DOUBLE_EQ(cfg.fault_watchdog, 0.5);
  EXPECT_EQ(cfg.checkpoint_interval, 3);
  EXPECT_EQ(cfg.checkpoint_dir, "/tmp/ck");
  EXPECT_THROW(core::parse_config("fault.watchdog=0"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("fault.watchdog=abc"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("checkpoint.interval=-1"),
               std::invalid_argument);
}

// ---- checkpoint integrity (v2 CRC framing) ----------------------------------

namespace {

/// Single-rank world + trained Linear/Adam pair, checkpointed to `path`.
/// Returns the saved step so callers can assert the round trip.
void write_small_checkpoint(const std::string& path, std::int64_t step,
                            sim::FaultPlan* faults = nullptr) {
  core::Config cfg;
  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  if (faults != nullptr) cluster.install_faults(*faults);
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 122);
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    for (nn::Parameter* p : net.parameters()) p->grad.fill(0.5f);
    opt.step();
    engine::save_checkpoint(env, net, opt, step, path);
  });
}

}  // namespace

TEST(FaultMatrix, CorruptCheckpointRaisesStructuredError) {
  const std::string path = ::testing::TempDir() + "ca_ckpt_corrupt.bin";
  write_small_checkpoint(path, 3);

  // Flip one byte inside the params payload: the section layout is fixed
  // (magic 8, then the framed "meta" section of 8+4 + 8 + 8 + 8 = 36 bytes),
  // so offset 80 is well past the params frame header.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(80);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(80);
    f.write(&b, 1);
  }

  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 122);
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    try {
      engine::load_checkpoint(env, net, opt, path);
      FAIL() << "corrupt checkpoint loaded silently";
    } catch (const engine::CheckpointCorruptError& e) {
      EXPECT_EQ(e.path(), path);
      EXPECT_EQ(e.section(), "params");
      EXPECT_GE(e.offset(), 8);  // anchored past the magic
      EXPECT_NE(std::string(e.what()).find("crc mismatch"), std::string::npos);
    }
  });
}

TEST(FaultMatrix, TruncatedCheckpointRaises) {
  const std::string path = ::testing::TempDir() + "ca_ckpt_trunc.bin";
  write_small_checkpoint(path, 3);
  // Chop the tail: the optim section's payload can no longer satisfy its
  // declared length, which must surface as corruption, not a silent zero-fill.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
  }
  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 122);
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    EXPECT_THROW(engine::load_checkpoint(env, net, opt, path),
                 engine::CheckpointCorruptError);
  });
}

TEST(FaultMatrix, CkptCorruptFaultInjected) {
  // The CA_FAULT_CKPT_CORRUPT path end to end: the injector flips a bit in
  // the file written at the matching step, and the next load detects it.
  const std::string path = ::testing::TempDir() + "ca_ckpt_injected.bin";
  auto plan = sim::FaultPlan{}.corrupt_checkpoint(2);
  write_small_checkpoint(path, 2, &plan);

  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 122);
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    EXPECT_THROW(engine::load_checkpoint(env, net, opt, path),
                 engine::CheckpointCorruptError);
  });

  // A non-matching step writes a pristine file that loads fine.
  auto plan5 = sim::FaultPlan{}.corrupt_checkpoint(5);
  write_small_checkpoint(path, 2, &plan5);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 122);
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    EXPECT_EQ(engine::load_checkpoint(env, net, opt, path), 2);
  });
}

TEST(FaultMatrix, CheckpointV1StillReadable) {
  // Hand-craft a v1 ("CACKPT01", unframed) stream: magic, step, raw params,
  // raw optimizer state. The v2 reader must accept it unchanged.
  nn::Linear src("m", 6, 3, 122);
  optim::Adam src_opt(src.parameters(), optim::Adam::Hyper{0.01f});
  for (nn::Parameter* p : src.parameters()) p->grad.fill(0.25f);
  src_opt.step();

  std::ostringstream os;
  os.write(engine::kCheckpointMagic, sizeof(engine::kCheckpointMagic));
  core::write_i64(os, 7);  // resume step
  const auto params = src.parameters();
  core::write_i64(os, static_cast<std::int64_t>(params.size()));
  for (const nn::Parameter* p : params) {
    core::write_str(os, p->name);
    core::write_i64(os, p->numel());
    core::write_f32s(os, p->value.data().data(), p->numel());
  }
  src_opt.save_state(os);  // the raw [i64 numel][f32s] hook v1 used
  const std::string v1 = os.str();

  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  col::Backend backend(cluster);
  core::Config cfg;
  core::ParallelContext ctx(backend, cfg);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    nn::Linear net("m", 6, 3, 999);  // different seed: restore must win
    optim::Adam opt(net.parameters(), optim::Adam::Hyper{0.01f});
    std::istringstream is(v1);
    EXPECT_EQ(engine::deserialize_checkpoint(env, net, opt, is), 7);
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(t::max_diff(net.parameters()[i]->value, params[i]->value),
                0.0f);
    }
    std::ostringstream a, b;
    opt.save_state(a);
    src_opt.save_state(b);
    EXPECT_EQ(a.str(), b.str());  // moments restored bit-identically
  });
}
