// Tests for the automatic-parallelization module (Section 3.3): sharding
// spec algebra, the greedy conversion search against the exact Dijkstra
// reference, and the strategy planner with integrated activation
// checkpointing.

#include <gtest/gtest.h>

#include "autop/conversion.hpp"
#include "autop/planner.hpp"
#include "autop/sharding_spec.hpp"

namespace ap = ca::autop;

namespace {
const ap::Mesh kMesh{4, 2, 100e9, 25e9, 5e-6};

ap::ShardingSpec spec(std::initializer_list<ap::DimShard> d) {
  return ap::ShardingSpec(std::vector<ap::DimShard>(d));
}
}  // namespace

using ap::DimShard;

TEST(ShardingSpec, AxisAlgebra) {
  EXPECT_EQ(ap::add_axis(DimShard::kR, 0), DimShard::kS0);
  EXPECT_EQ(ap::add_axis(DimShard::kS1, 0), DimShard::kS01);
  EXPECT_EQ(ap::remove_axis(DimShard::kS01, 1), DimShard::kS0);
  EXPECT_EQ(ap::remove_axis(DimShard::kS0, 0), DimShard::kR);
  EXPECT_TRUE(ap::has_axis(DimShard::kS01, 0));
  EXPECT_FALSE(ap::has_axis(DimShard::kS1, 0));
}

TEST(ShardingSpec, ValidityRejectsDoubleUse) {
  EXPECT_TRUE(spec({DimShard::kS0, DimShard::kS1}).valid());
  EXPECT_FALSE(spec({DimShard::kS0, DimShard::kS0}).valid());
  EXPECT_FALSE(spec({DimShard::kS01, DimShard::kS1}).valid());
}

TEST(ShardingSpec, LocalNumel) {
  EXPECT_EQ(spec({DimShard::kR, DimShard::kR}).local_numel(800, kMesh), 800);
  EXPECT_EQ(spec({DimShard::kS0, DimShard::kR}).local_numel(800, kMesh), 200);
  EXPECT_EQ(spec({DimShard::kS0, DimShard::kS1}).local_numel(800, kMesh), 100);
  EXPECT_EQ(spec({DimShard::kS01, DimShard::kR}).local_numel(800, kMesh), 100);
}

TEST(ShardingSpec, Printing) {
  EXPECT_EQ(spec({DimShard::kS0, DimShard::kR}).str(), "[S0,R]");
  EXPECT_EQ(spec({DimShard::kS01, DimShard::kS1}).str(), "[S01,S1]");
}

TEST(Conversion, ShardIsFreeGatherIsNot) {
  const auto from = spec({DimShard::kR, DimShard::kR});
  auto steps = ap::enumerate_steps(from, kMesh, 1 << 20);
  bool found_free_shard = false;
  for (const auto& s : steps) {
    if (s.kind == ap::ConvStep::Kind::kShard) {
      EXPECT_EQ(s.cost, 0.0);
      found_free_shard = true;
    }
  }
  EXPECT_TRUE(found_free_shard);

  const auto sharded = spec({DimShard::kS0, DimShard::kR});
  for (const auto& s : ap::enumerate_steps(sharded, kMesh, 1 << 20)) {
    if (s.kind == ap::ConvStep::Kind::kAllGather) {
      EXPECT_GT(s.cost, 0.0);
    }
  }
}

TEST(Conversion, ApplyRoundTrips) {
  const auto from = spec({DimShard::kS0, DimShard::kR});
  ap::ConvStep a2a{ap::ConvStep::Kind::kAllToAll, 0, 0, 1, 0.0};
  const auto moved = ap::apply(from, a2a);
  EXPECT_EQ(moved, spec({DimShard::kR, DimShard::kS0}));
  ap::ConvStep back{ap::ConvStep::Kind::kAllToAll, 0, 1, 0, 0.0};
  EXPECT_EQ(ap::apply(moved, back), from);
}

TEST(Conversion, GreedyReachesTarget) {
  const auto from = spec({DimShard::kS0, DimShard::kS1});
  const auto to = spec({DimShard::kS1, DimShard::kS0});
  const auto plan = ap::plan_greedy(from, to, kMesh, 1 << 24);
  // verify by replay
  auto cur = from;
  for (const auto& s : plan.steps) cur = ap::apply(cur, s);
  EXPECT_EQ(cur, to);
  EXPECT_GT(plan.total_cost, 0.0);
}

TEST(Conversion, GreedyPrefersAllToAllOverGatherShard) {
  // moving S0 between dims: one all-to-all (local/n traffic) beats
  // all-gather (full) + free shard
  const auto from = spec({DimShard::kS0, DimShard::kR});
  const auto to = spec({DimShard::kR, DimShard::kS0});
  const auto plan = ap::plan_greedy(from, to, kMesh, 1 << 24);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, ap::ConvStep::Kind::kAllToAll);
}

TEST(Conversion, GreedyMatchesOptimalOnExhaustiveSweep) {
  // every pair of valid 2-d specs on a 4x2 mesh: the greedy plan must land
  // within 1.5x of Dijkstra (and usually equal) — the paper's trade: a fast
  // search instead of a hardcoded table, without losing much.
  std::vector<ap::ShardingSpec> all;
  const DimShard kinds[] = {DimShard::kR, DimShard::kS0, DimShard::kS1,
                            DimShard::kS01};
  for (auto a : kinds)
    for (auto b : kinds) {
      auto s = spec({a, b});
      if (s.valid()) all.push_back(s);
    }
  int exact_matches = 0, total = 0;
  for (const auto& from : all) {
    for (const auto& to : all) {
      const auto greedy = ap::plan_greedy(from, to, kMesh, 1 << 22);
      const auto optimal = ap::plan_optimal(from, to, kMesh, 1 << 22);
      EXPECT_LE(greedy.total_cost, 1.5 * optimal.total_cost + 1e-12)
          << from.str() << " -> " << to.str();
      if (greedy.total_cost <= optimal.total_cost + 1e-12) ++exact_matches;
      ++total;
    }
  }
  // greedy should be exactly optimal in the large majority of cases
  EXPECT_GT(exact_matches * 10, total * 8);
}

TEST(Conversion, OptimalIdentityIsFree) {
  const auto s = spec({DimShard::kS0, DimShard::kS1});
  EXPECT_EQ(ap::plan_optimal(s, s, kMesh, 1 << 20).total_cost, 0.0);
  EXPECT_TRUE(ap::plan_greedy(s, s, kMesh, 1 << 20).steps.empty());
}

// ---- planner ---------------------------------------------------------------------

TEST(Planner, SmallModelPrefersDataParallel) {
  // tiny weights, big batch: weight all-reduce is cheap, activations dominate
  ap::Planner planner(kMesh, 100e12);
  std::vector<ap::LinearNode> graph{{"l0", 1 << 16, 256, 256},
                                    {"l1", 1 << 16, 256, 256}};
  const auto plan = planner.plan(graph, std::int64_t{64} << 30);
  ASSERT_TRUE(plan.feasible);
  for (const auto& n : plan.nodes)
    EXPECT_NE(n.strategy.find("data-parallel"), std::string::npos) << n.strategy;
}

TEST(Planner, HugeWeightsPreferTensorParallel) {
  // giant weights, small batch: replicating weights is hopeless; the planner
  // must shard them (column/row-parallel), Megatron-style.
  ap::Planner planner(kMesh, 100e12);
  std::vector<ap::LinearNode> graph{{"fc1", 512, 16384, 65536},
                                    {"fc2", 512, 65536, 16384}};
  const auto plan = planner.plan(graph, std::int64_t{64} << 30);
  ASSERT_TRUE(plan.feasible);
  for (const auto& n : plan.nodes) {
    EXPECT_TRUE(n.strategy.find("column-parallel") != std::string::npos ||
                n.strategy.find("row-parallel") != std::string::npos)
        << n.strategy;
  }
}

TEST(Planner, MegatronPairingAvoidsConversions) {
  // col-parallel then row-parallel chain: the output spec of the first
  // matches the input spec of the second, so conversion cost must be zero.
  ap::Planner planner(kMesh, 100e12);
  std::vector<ap::LinearNode> graph{{"fc1", 512, 8192, 32768},
                                    {"fc2", 512, 32768, 8192}};
  const auto plan = planner.plan(graph, std::int64_t{64} << 30);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.nodes[1].conversion_cost, 0.0);
}

TEST(Planner, CheckpointingActivatesUnderTightBudget) {
  ap::Planner planner(kMesh, 100e12);
  std::vector<ap::LinearNode> graph;
  for (int i = 0; i < 6; ++i)
    graph.push_back({"l" + std::to_string(i), 1 << 14, 4096, 4096});

  const auto loose = planner.plan(graph, std::int64_t{64} << 30);
  ASSERT_TRUE(loose.feasible);
  int loose_ckpt = 0;
  for (const auto& n : loose.nodes) loose_ckpt += n.checkpointed ? 1 : 0;
  EXPECT_EQ(loose_ckpt, 0);

  // budget just above the parameter floor forces checkpointing
  const auto tight = planner.plan(graph, loose.peak_bytes / 2);
  int tight_ckpt = 0;
  for (const auto& n : tight.nodes) tight_ckpt += n.checkpointed ? 1 : 0;
  EXPECT_GT(tight_ckpt, 0);
  EXPECT_LE(tight.peak_bytes, loose.peak_bytes);
  EXPECT_GE(tight.step_seconds, loose.step_seconds);  // recompute costs time
}

TEST(Planner, InfeasibleBudgetReported) {
  ap::Planner planner(kMesh, 100e12);
  std::vector<ap::LinearNode> graph{{"l0", 1 << 14, 4096, 4096}};
  const auto plan = planner.plan(graph, 1024);  // absurd budget
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, PrefersTheFasterMeshAxis) {
  // same shape, two meshes that differ only in which axis is fast: the
  // data-parallel strategy's weight all-reduce should land on the fast axis.
  std::vector<ap::LinearNode> graph{{"l", 1 << 16, 256, 256}};
  const std::int64_t budget = std::int64_t{64} << 30;

  ap::Planner fast0(ap::Mesh{4, 4, 100e9, 5e9, 5e-6}, 100e12);
  const auto plan0 = fast0.plan(graph, budget);
  EXPECT_NE(plan0.nodes[0].strategy.find("axis0"), std::string::npos)
      << plan0.nodes[0].strategy;

  ap::Planner fast1(ap::Mesh{4, 4, 5e9, 100e9, 5e-6}, 100e12);
  const auto plan1 = fast1.plan(graph, budget);
  EXPECT_NE(plan1.nodes[0].strategy.find("axis1"), std::string::npos)
      << plan1.nodes[0].strategy;
}

TEST(Conversion, CostsScaleLinearlyWithTensorSize) {
  const ap::Mesh mesh{4, 2, 100e9, 25e9, 0.0};  // alpha 0: pure bandwidth
  const auto from = spec({DimShard::kS0, DimShard::kR});
  const auto to = spec({DimShard::kR, DimShard::kS0});
  const auto small = ap::plan_greedy(from, to, mesh, 1 << 20);
  const auto big = ap::plan_greedy(from, to, mesh, 4 << 20);
  EXPECT_NEAR(big.total_cost / small.total_cost, 4.0, 1e-9);
}

TEST(PipeScheduleChooser, UnconstrainedPrefersZeroBubble) {
  ca::collective::PipeCostParams p;
  p.stages = 4;
  p.micros = 8;
  p.chunks = 2;
  p.fwd_s = 1.0;
  p.bwd_input_s = 1.0;
  p.bwd_weight_s = 1.0;
  const auto pick = ap::best_pipeline_schedule(p, 1 << 20, /*budget=*/0);
  EXPECT_EQ(pick.sched, ca::collective::PipeSched::kZeroBubble);
  EXPECT_TRUE(pick.feasible);
  // it wins by shrinking the bubble below the classic (S-1)/(M+S-1)
  const auto f1b = ca::collective::pipeline_schedule_cost(
      ca::collective::PipeSched::kOneFOneB, p);
  EXPECT_LT(pick.cost.bubble_fraction, f1b.bubble_fraction);
}

TEST(PipeScheduleChooser, TightMemoryFallsBackToOneFOneB) {
  ca::collective::PipeCostParams p;
  p.stages = 4;
  p.micros = 8;
  p.chunks = 1;
  p.fwd_s = 1.0;
  p.bwd_input_s = 1.0;
  p.bwd_weight_s = 1.0;
  const std::int64_t per_micro = 1 << 20;
  // enough for 1F1B's min(M, S) resident micros but not zero-bubble's 2S-1
  const auto pick = ap::best_pipeline_schedule(p, per_micro, 4 * per_micro);
  EXPECT_EQ(pick.sched, ca::collective::PipeSched::kOneFOneB);
  EXPECT_TRUE(pick.feasible);
  EXPECT_LE(pick.peak_bytes, 4 * per_micro);
}

TEST(PipeScheduleChooser, NothingFitsReportsInfeasibleMinimum) {
  ca::collective::PipeCostParams p;
  p.stages = 4;
  p.micros = 8;
  p.fwd_s = 1.0;
  p.bwd_input_s = 1.0;
  p.bwd_weight_s = 1.0;
  const auto pick = ap::best_pipeline_schedule(p, 1 << 20, /*budget=*/1);
  EXPECT_FALSE(pick.feasible);
  // the least-memory candidate is the 1F1B cap
  EXPECT_EQ(pick.sched, ca::collective::PipeSched::kOneFOneB);
}
