// LR schedules, gradient clipping, and the NVMe offload tier.

#include <gtest/gtest.h>

#include "collective/backend.hpp"
#include "nn/layers.hpp"
#include "optim/lr_scheduler.hpp"
#include "zero/chunk.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace optim = ca::optim;
namespace zero = ca::zero;

TEST(CosineLr, WarmupRampsLinearly) {
  optim::CosineLr sched(1.0f, /*warmup=*/10, /*total=*/110);
  EXPECT_FLOAT_EQ(sched.lr(0), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr(4), 0.5f);
  EXPECT_FLOAT_EQ(sched.lr(9), 1.0f);
}

TEST(CosineLr, DecaysToMinAtEnd) {
  optim::CosineLr sched(1.0f, 0, 100, /*min_lr=*/0.1f);
  EXPECT_FLOAT_EQ(sched.lr(0), 1.0f);
  EXPECT_NEAR(sched.lr(50), 0.55f, 1e-4f);  // halfway: (1 + cos(pi/2))/2 mix
  EXPECT_NEAR(sched.lr(100), 0.1f, 1e-5f);
  EXPECT_NEAR(sched.lr(500), 0.1f, 1e-5f);  // clamps past the end
}

TEST(CosineLr, MonotoneDecreasingAfterWarmup) {
  optim::CosineLr sched(0.003f, 20, 200);  // the paper's ViT base lr
  float prev = sched.lr(20);
  for (int s = 21; s < 200; s += 7) {
    const float cur = sched.lr(s);
    EXPECT_LE(cur, prev + 1e-9f);
    prev = cur;
  }
}

TEST(ConstantLr, HoldsAfterWarmup) {
  optim::ConstantLr sched(0.5f, 4);
  EXPECT_FLOAT_EQ(sched.lr(1), 0.25f);
  EXPECT_FLOAT_EQ(sched.lr(4), 0.5f);
  EXPECT_FLOAT_EQ(sched.lr(4000), 0.5f);
}

TEST(GradClip, RescalesOnlyWhenAboveThreshold) {
  nn::Parameter p("p", t::zeros(t::Shape{4}));
  p.grad = t::Tensor(t::Shape{4}, {3.0f, 0.0f, 4.0f, 0.0f});  // norm 5
  const float norm = optim::clip_grad_norm({&p}, 10.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 3.0f);  // untouched

  const float norm2 = optim::clip_grad_norm({&p}, 1.0f);
  EXPECT_FLOAT_EQ(norm2, 5.0f);
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-6f);  // 3/5
  EXPECT_NEAR(p.grad[2], 0.8f, 1e-6f);
}

TEST(GradClip, SpansMultipleParams) {
  nn::Parameter a("a", t::zeros(t::Shape{2}));
  nn::Parameter b("b", t::zeros(t::Shape{2}));
  a.grad.fill(3.0f);
  b.grad.fill(4.0f);  // global norm = sqrt(2*9 + 2*16) = sqrt(50)
  const float norm = optim::clip_grad_norm({&a, &b}, 1.0f);
  EXPECT_NEAR(norm, std::sqrt(50.0f), 1e-5f);
  double sq = 0.0;
  for (float g : a.grad.data()) sq += g * g;
  for (float g : b.grad.data()) sq += g * g;
  EXPECT_NEAR(std::sqrt(sq), 1.0f, 1e-5f);
}

// ---- NVMe tier -------------------------------------------------------------------

namespace {
struct W1 {
  W1() : cluster(ca::sim::Topology::uniform(1, 1e9)), backend(cluster) {
    ca::core::Config cfg;
    ctx = std::make_unique<ca::core::ParallelContext>(backend, cfg);
  }
  ca::tp::Env env() { return ca::tp::Env{ctx.get(), 0}; }
  ca::sim::Cluster cluster;
  ca::collective::Backend backend;
  std::unique_ptr<ca::core::ParallelContext> ctx;
};
}  // namespace

TEST(NvmeTier, ChunksDescendAndReturnThroughTiers) {
  W1 w;
  w.cluster.run([&](int) {
    zero::ChunkManager cm(w.env(), 1000, zero::Placement::kDevice);
    cm.append("p", 1000);
    EXPECT_EQ(cm.device_bytes(), 1000);
    cm.move_to(0, zero::Placement::kHost);
    cm.move_to(0, zero::Placement::kNvme);
    EXPECT_EQ(cm.nvme_bytes(), 1000);
    EXPECT_EQ(cm.host_bytes(), 0);
    EXPECT_EQ(w.cluster.nvme_mem().current(), 1000);
    cm.move_to(0, zero::Placement::kDevice);
    EXPECT_EQ(cm.device_bytes(), 1000);
    EXPECT_EQ(w.cluster.nvme_mem().current(), 0);
  });
}

TEST(NvmeTier, MovesAreSlowerThanHostMoves) {
  W1 w;
  w.cluster.run([&](int) {
    auto env = w.env();
    zero::ChunkManager cm(env, 64 << 20, zero::Placement::kDevice);
    cm.append("p", 64 << 20);

    const double t0 = env.dev().clock();
    cm.move_to(0, zero::Placement::kHost);
    const double host_move = env.dev().clock() - t0;

    const double t1 = env.dev().clock();
    cm.move_to(0, zero::Placement::kNvme);
    const double nvme_move = env.dev().clock() - t1;

    // PCIe 16 GB/s vs NVMe 3 GB/s
    EXPECT_GT(nvme_move, 4.0 * host_move);
  });
}
