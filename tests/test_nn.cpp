// Tests for the serial NN substrate: module contracts, parameter registry,
// and gradient correctness of every layer (the parallel layers are later
// verified against these, so these must be right).

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;

TEST(Parameter, GradMatchesShape) {
  nn::Parameter p("w", t::randn(t::Shape{3, 4}, 1));
  EXPECT_EQ(p.grad.shape(), (t::Shape{3, 4}));
  EXPECT_EQ(t::max_abs(p.grad), 0.0f);
  EXPECT_EQ(p.numel(), 12);
}

TEST(Linear, ForwardMatchesManualMatmul) {
  nn::Linear lin("l", 4, 3, 42);
  auto x = t::randn(t::Shape{5, 4}, 7);
  auto y = lin.forward(x);
  auto expect = t::add_bias(t::matmul(x, lin.weight().value), lin.bias()->value);
  EXPECT_EQ(t::max_diff(y, expect), 0.0f);
}

TEST(Linear, NoBiasVariant) {
  nn::Linear lin("l", 4, 3, 42, /*with_bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  auto x = t::randn(t::Shape{2, 4}, 7);
  auto y = lin.forward(x);
  EXPECT_EQ(t::max_diff(y, t::matmul(x, lin.weight().value)), 0.0f);
}

TEST(Linear, BackwardMatchesFiniteDifference) {
  nn::Linear lin("l", 6, 5, 3);
  auto x = t::randn(t::Shape{4, 6}, 8);
  auto w = t::randn(t::Shape{4, 5}, 9);  // dL/dy for L = sum(y*w)
  lin.forward(x);
  auto dx = lin.backward(w);

  const float eps = 1e-3f;
  auto loss_at = [&](const t::Tensor& xx) {
    nn::Linear l2("l", 6, 5, 3);
    return t::sum(t::mul(l2.forward(xx), w));
  };
  for (int i = 0; i < 24; i += 5) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss_at(xp) - loss_at(xm)) / (2 * eps), 2e-2f);
  }
  // weight grad: dW = x^T w
  auto expect_dw = t::matmul_tn(x, w);
  EXPECT_LT(t::max_diff(lin.weight().grad, expect_dw), 1e-5f);
  // bias grad: column sums of w
  EXPECT_LT(t::max_diff(lin.bias()->grad, t::sum_to_lastdim(w)), 1e-5f);
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls) {
  nn::Linear lin("l", 3, 2, 5);
  auto x = t::randn(t::Shape{2, 3}, 6);
  auto dy = t::ones(t::Shape{2, 2});
  lin.forward(x);
  lin.backward(dy);
  auto g1 = lin.weight().grad.clone();
  lin.forward(x);
  lin.backward(dy);
  EXPECT_LT(t::max_diff(lin.weight().grad, t::mul_scalar(g1, 2.0f)), 1e-6f);
  lin.zero_grad();
  EXPECT_EQ(t::max_abs(lin.weight().grad), 0.0f);
}

TEST(Module, SequentialChainsAndCollectsParams) {
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>("a", 4, 8, 1));
  seq.add(std::make_unique<nn::Gelu>());
  seq.add(std::make_unique<nn::Linear>("b", 8, 2, 2));
  EXPECT_EQ(seq.parameters().size(), 4u);
  EXPECT_EQ(seq.num_params(), 4 * 8 + 8 + 8 * 2 + 2);

  auto x = t::randn(t::Shape{3, 4}, 11);
  auto y = seq.forward(x);
  EXPECT_EQ(y.shape(), (t::Shape{3, 2}));
  auto dx = seq.backward(t::ones(t::Shape{3, 2}));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Embedding, LookupAndScatterGrad) {
  nn::Embedding emb("e", 10, 4, 3);
  std::vector<std::int64_t> ids{2, 7, 2};
  auto out = emb.forward(ids);
  EXPECT_EQ(out.shape(), (t::Shape{3, 4}));
  // rows 0 and 2 equal (same id)
  for (int c = 0; c < 4; ++c) EXPECT_EQ(out[c], out[2 * 4 + c]);

  auto dy = t::ones(t::Shape{3, 4});
  emb.backward(dy);
  // id 2 hit twice, id 7 once, id 0 never
  EXPECT_EQ(emb.table().grad[2 * 4], 2.0f);
  EXPECT_EQ(emb.table().grad[7 * 4], 1.0f);
  EXPECT_EQ(emb.table().grad[0], 0.0f);
}

TEST(Heads, SplitMergeRoundTrip) {
  auto x = t::randn(t::Shape{2, 3, 8}, 21);
  auto split = nn::split_heads(x, 4);
  EXPECT_EQ(split.shape(), (t::Shape{8, 3, 2}));
  auto merged = nn::merge_heads(split, 4);
  EXPECT_EQ(t::max_diff(x, merged), 0.0f);
}

TEST(Heads, SplitPlacesHeadsContiguously) {
  // hidden layout per token: [head0 dims | head1 dims]
  t::Tensor x(t::Shape{1, 1, 4}, {10, 11, 20, 21});
  auto split = nn::split_heads(x, 2);
  EXPECT_EQ(split[0], 10.0f);
  EXPECT_EQ(split[1], 11.0f);
  EXPECT_EQ(split[2], 20.0f);
  EXPECT_EQ(split[3], 21.0f);
}

TEST(Attention, OutputShapeAndDeterminism) {
  nn::MultiHeadAttention attn("a", 8, 2, 77);
  auto x = t::randn(t::Shape{2, 5, 8}, 13);
  auto y1 = attn.forward(x);
  nn::MultiHeadAttention attn2("a", 8, 2, 77);
  auto y2 = attn2.forward(x);
  EXPECT_EQ(y1.shape(), x.shape());
  EXPECT_EQ(t::max_diff(y1, y2), 0.0f);
}

TEST(Attention, UniformValuesAttendToAverage) {
  // if V rows are identical across the sequence, attention output is
  // insensitive to the attention pattern; sanity-check via two different
  // inputs with identical token embeddings.
  nn::MultiHeadAttention attn("a", 4, 1, 5);
  t::Tensor x(t::Shape{1, 3, 4}, 1.0f);  // all tokens identical
  auto y = attn.forward(x);
  for (int s = 1; s < 3; ++s)
    for (int c = 0; c < 4; ++c)
      EXPECT_NEAR(y[s * 4 + c], y[c], 1e-6f);
}

TEST(Attention, BackwardMatchesFiniteDifference) {
  const std::int64_t b = 1, s = 3, h = 8, heads = 2;
  nn::MultiHeadAttention attn("a", h, heads, 17);
  auto x = t::randn(t::Shape{b, s, h}, 18);
  auto w = t::randn(t::Shape{b, s, h}, 19);
  attn.forward(x);
  auto dx = attn.backward(w);

  const float eps = 1e-3f;
  auto loss_at = [&](const t::Tensor& xx) {
    nn::MultiHeadAttention a2("a", h, heads, 17);
    return t::sum(t::mul(a2.forward(xx), w));
  };
  for (int i = 0; i < b * s * h; i += 3) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss_at(xp) - loss_at(xm)) / (2 * eps), 3e-2f)
        << "at " << i;
  }
}

TEST(Mlp, BackwardMatchesFiniteDifference) {
  nn::Mlp mlp("m", 6, 12, 23);
  auto x = t::randn(t::Shape{4, 6}, 24);
  auto w = t::randn(t::Shape{4, 12}, 25);
  // careful: mlp output dim == hidden (6); rebuild w accordingly
  w = t::randn(t::Shape{4, 6}, 25);
  mlp.forward(x);
  auto dx = mlp.backward(w);
  const float eps = 1e-3f;
  auto loss_at = [&](const t::Tensor& xx) {
    nn::Mlp m2("m", 6, 12, 23);
    return t::sum(t::mul(m2.forward(xx), w));
  };
  for (int i = 0; i < 24; i += 5) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss_at(xp) - loss_at(xm)) / (2 * eps), 2e-2f);
  }
}

TEST(TransformerBlock, BackwardMatchesFiniteDifference) {
  const std::int64_t b = 1, s = 2, h = 8, heads = 2, ffn = 16;
  nn::TransformerBlock blk("t", h, heads, ffn, 31);
  auto x = t::randn(t::Shape{b, s, h}, 32);
  auto w = t::randn(t::Shape{b, s, h}, 33);
  blk.forward(x);
  auto dx = blk.backward(w);
  const float eps = 2e-3f;
  auto loss_at = [&](const t::Tensor& xx) {
    nn::TransformerBlock b2("t", h, heads, ffn, 31);
    return t::sum(t::mul(b2.forward(xx), w));
  };
  for (int i = 0; i < b * s * h; i += 3) {
    auto xp = x.clone();
    auto xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss_at(xp) - loss_at(xm)) / (2 * eps), 5e-2f)
        << "at " << i;
  }
}

TEST(TransformerBlock, ParamCount) {
  // per block: qkv (h*3h + 3h) + proj (h^2 + h) + mlp (h*f + f + f*h + h)
  // + 2 layernorms (2h each)
  const std::int64_t h = 8, f = 32;
  nn::TransformerBlock blk("t", h, 2, f, 1);
  const std::int64_t expect =
      (h * 3 * h + 3 * h) + (h * h + h) + (h * f + f + f * h + h) + 4 * h;
  EXPECT_EQ(blk.num_params(), expect);
}
