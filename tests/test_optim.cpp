// Tests for optimizers and mixed precision: SGD/Adam/AdamW math, loss
// scaling, and the fp16 master-weight scheme.

#include <gtest/gtest.h>

#include <cmath>

#include "optim/amp.hpp"
#include "optim/optimizer.hpp"
#include "tensor/half.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace optim = ca::optim;

namespace {
nn::Parameter make_param(float v0, float g0) {
  nn::Parameter p("p", t::full(t::Shape{4}, v0));
  p.grad.fill(g0);
  return p;
}
}  // namespace

TEST(Sgd, VanillaUpdate) {
  auto p = make_param(1.0f, 0.5f);
  optim::Sgd opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  auto p = make_param(0.0f, 1.0f);
  optim::Sgd opt({&p}, 1.0f, 0.9f);
  opt.step();  // v = 1, p = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad.fill(1.0f);
  opt.step();  // v = 1.9, p = -2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Sgd, ZeroGradClears) {
  auto p = make_param(0.0f, 3.0f);
  optim::Sgd opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_EQ(t::max_abs(p.grad), 0.0f);
}

TEST(Adam, FirstStepIsSignedLr) {
  // with bias correction, |update_1| == lr for any nonzero gradient
  auto p = make_param(1.0f, 0.37f);
  optim::Adam opt({&p}, {});
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 1e-3f, 1e-6f);
  auto q = make_param(1.0f, -42.0f);
  optim::Adam opt2({&q}, {});
  opt2.step();
  EXPECT_NEAR(q.value[0], 1.0f + 1e-3f, 1e-6f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize 0.5*(x - 3)^2
  nn::Parameter p("x", t::zeros(t::Shape{1}));
  optim::Adam::Hyper h;
  h.lr = 0.1f;
  optim::Adam opt({&p}, h);
  for (int i = 0; i < 400; ++i) {
    p.grad[0] = p.value[0] - 3.0f;
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(Adam, L2VersusDecoupledDecayDiffer) {
  auto a = make_param(2.0f, 0.0f);
  optim::Adam::Hyper hl2;
  hl2.weight_decay = 0.1f;
  optim::Adam l2({&a}, hl2);
  l2.step();

  auto b = make_param(2.0f, 0.0f);
  optim::Adam::Hyper hdec = hl2;
  hdec.decoupled = true;
  optim::Adam dec({&b}, hdec);
  dec.step();

  // L2 pushes decay through the moments (first step: full lr-sized move);
  // AdamW applies lr*wd*value directly.
  EXPECT_NEAR(b.value[0], 2.0f - 1e-3f * 0.1f * 2.0f, 1e-7f);
  EXPECT_LT(a.value[0], b.value[0]);
}

TEST(Adam, StateBytesAre8PerElement) {
  auto p = make_param(0.0f, 0.0f);  // 4 elements
  optim::Adam opt({&p}, {});
  EXPECT_EQ(opt.state_bytes(), 4 * 8);
}

TEST(LossScaler, BackoffOnOverflowGrowthAfterInterval) {
  optim::LossScaler s(1024.0f, 2.0f, 0.5f, /*growth_interval=*/2);
  EXPECT_FALSE(s.update(true));  // overflow: halve, skip
  EXPECT_FLOAT_EQ(s.scale(), 512.0f);
  EXPECT_TRUE(s.update(false));
  EXPECT_FLOAT_EQ(s.scale(), 512.0f);
  EXPECT_TRUE(s.update(false));  // second clean step: grow
  EXPECT_FLOAT_EQ(s.scale(), 1024.0f);
}

TEST(LossScaler, DetectsInfAndNan) {
  auto p = make_param(0.0f, 1.0f);
  EXPECT_FALSE(optim::LossScaler::has_overflow({&p}));
  p.grad[2] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(optim::LossScaler::has_overflow({&p}));
  p.grad[2] = std::nanf("");
  EXPECT_TRUE(optim::LossScaler::has_overflow({&p}));
}

TEST(MixedPrecision, LiveValuesAreFp16Representable) {
  nn::Parameter p("p", t::randn(t::Shape{64}, 3));
  optim::MixedPrecision mp({&p}, [](std::vector<nn::Parameter*> ps) {
    return std::make_unique<optim::Sgd>(std::move(ps), 0.01f);
  });
  for (float v : p.value.data()) EXPECT_EQ(v, t::fp16_round_trip(v));
}

TEST(MixedPrecision, SkipsStepOnOverflow) {
  nn::Parameter p("p", t::ones(t::Shape{2}));
  optim::MixedPrecision mp({&p}, [](std::vector<nn::Parameter*> ps) {
    return std::make_unique<optim::Sgd>(std::move(ps), 0.1f);
  });
  const float before = p.value[0];
  p.grad.fill(std::numeric_limits<float>::infinity());
  EXPECT_FALSE(mp.step());
  EXPECT_EQ(p.value[0], before);
}

TEST(MixedPrecision, MasterAccumulatesBelowFp16Resolution) {
  // updates of 1e-4 on a value of 1.0 vanish in fp16 (ulp ~ 4.9e-4) but must
  // accumulate in the fp32 master and eventually move the live value.
  nn::Parameter p("p", t::ones(t::Shape{1}));
  optim::MixedPrecision mp(
      {&p},
      [](std::vector<nn::Parameter*> ps) {
        return std::make_unique<optim::Sgd>(std::move(ps), 1.0f);
      },
      optim::LossScaler(1.0f));
  for (int i = 0; i < 10; ++i) {
    p.grad.fill(1e-4f);
    EXPECT_TRUE(mp.step());
  }
  // master moved by 1e-3; live fp16 value reflects the accumulated change
  EXPECT_LT(p.value[0], 1.0f);
  EXPECT_NEAR(p.value[0], 1.0f - 1e-3f, 5e-4f);
}

TEST(MixedPrecision, UnscalesGradients) {
  nn::Parameter p("p", t::zeros(t::Shape{1}));
  optim::MixedPrecision mp(
      {&p},
      [](std::vector<nn::Parameter*> ps) {
        return std::make_unique<optim::Sgd>(std::move(ps), 1.0f);
      },
      optim::LossScaler(128.0f));
  p.grad.fill(128.0f);  // scaled gradient of 1.0
  EXPECT_TRUE(mp.step());
  EXPECT_NEAR(p.value[0], -1.0f, 1e-3f);
}
