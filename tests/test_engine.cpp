// Integration tests across data / models / engine: the Listing-1 training
// loop, data-parallel equivalence, trainer hooks, and the Figure 7 property
// — every tensor-parallel mode reproduces the serial training trajectory
// exactly on identical data.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "engine/trainer.hpp"
#include "models/classifier.hpp"
#include "models/configs.hpp"
#include "models/vit.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace models = ca::models;
namespace data = ca::data;
namespace engine = ca::engine;

namespace {

struct World {
  World(core::Config cfg, double bw = 100e9)
      : cluster(sim::Topology::uniform(cfg.world_size(), bw)),
        backend(cluster),
        ctx(backend, cfg) {
    // Serial-equivalence suite: pin the wire to fp32 (see DESIGN.md §10).
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

core::Config tp_cfg(core::TpMode mode, int size, int depth = 1) {
  core::Config cfg;
  cfg.tensor_parallel_size = size;
  cfg.tensor_mode = mode;
  cfg.tensor_depth = depth;
  return cfg;
}

}  // namespace

// ---- data ------------------------------------------------------------------------

TEST(Data, DeterministicAndClassStructured) {
  data::SyntheticClassification ds(128, 8, 4, 7);
  auto a = ds.batch_features(0, 16);
  auto b = ds.batch_features(0, 16);
  EXPECT_EQ(t::max_diff(a, b), 0.0f);
  auto labels = ds.batch_labels(0, 8);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[5], 1);  // idx 5 % 4
}

TEST(Data, TokensInVocabAndSkewed) {
  data::SyntheticTokens toks(1000, 3);
  auto ids = toks.tokens(0, 5000);
  std::int64_t low = 0;
  for (auto id : ids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, 1000);
    if (id < 250) ++low;
  }
  // z^2 skew: P(id < 250) = P(z < 0.5) = 0.5, far above the uniform 0.25
  EXPECT_GT(low, 2000);
}

TEST(Data, LoaderShardsBatchesAcrossRanks) {
  data::SyntheticClassification ds(64, 4, 2, 9);
  data::DataLoader l0(ds, 8, /*dp_rank=*/0, /*dp_size=*/2);
  data::DataLoader l1(ds, 8, 1, 2);
  EXPECT_EQ(l0.local_batch(), 4);
  auto b0 = l0.next(0);
  auto b1 = l1.next(0);
  // together they cover the global batch: rank1 starts where rank0 ends
  auto full = ds.batch_features(0, 8);
  EXPECT_EQ(t::max_diff(b0.x, t::narrow(full, 0, 0, 4)), 0.0f);
  EXPECT_EQ(t::max_diff(b1.x, t::narrow(full, 0, 4, 4)), 0.0f);
}

// ---- Figure 7: convergence equivalence of all TP modes -----------------------------

namespace {

std::vector<float> serial_trajectory(int steps) {
  models::Classifier::Config mc{8, 16, 8, 1, 5};
  models::Classifier model(mc);
  data::SyntheticClassification ds(4096, 8, 8, 77);
  return models::train_trajectory(model, ds, 16, steps, 0.05f);
}

std::vector<float> parallel_trajectory(core::TpMode mode, int size, int depth,
                                       int steps) {
  World w(tp_cfg(mode, size, depth));
  models::Classifier::Config mc{8, 16, 8, 1, 5};
  data::SyntheticClassification ds(4096, 8, 8, 77);
  std::vector<std::vector<float>> losses(static_cast<std::size_t>(size));
  w.cluster.run([&](int g) {
    models::Classifier model(w.env(g), mc);
    losses[static_cast<std::size_t>(g)] =
        models::train_trajectory(model, ds, 16, steps, 0.05f);
  });
  // all ranks must agree on every step loss
  for (int g = 1; g < size; ++g)
    for (int s = 0; s < steps; ++s)
      EXPECT_NEAR(losses[0][static_cast<std::size_t>(s)],
                  losses[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)],
                  1e-4f);
  return losses[0];
}

}  // namespace

struct ConvergenceCase {
  core::TpMode mode;
  int size;
  int depth;
};

class ConvergenceEquivalence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(ConvergenceEquivalence, TrajectoryMatchesSerial) {
  const auto c = GetParam();
  const int steps = 6;
  auto ref = serial_trajectory(steps);
  auto par = parallel_trajectory(c.mode, c.size, c.depth, steps);
  for (int s = 0; s < steps; ++s) {
    EXPECT_NEAR(ref[static_cast<std::size_t>(s)],
                par[static_cast<std::size_t>(s)], 2e-3f)
        << "step " << s << " mode " << core::to_string(c.mode);
  }
  // and training actually learns something
  EXPECT_LT(ref.back(), ref.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConvergenceEquivalence,
    ::testing::Values(ConvergenceCase{core::TpMode::k1d, 2, 1},
                      ConvergenceCase{core::TpMode::k1d, 4, 1},
                      ConvergenceCase{core::TpMode::k2d, 4, 1},
                      ConvergenceCase{core::TpMode::k2p5d, 8, 2},
                      ConvergenceCase{core::TpMode::k3d, 8, 1}));

// ---- ViT: serial vs 1D vs sequence parallel ------------------------------------------

TEST(Vit, TensorParallelLogitsMatchSerial) {
  models::VitClassifier::Config vc;
  vc.seed = 3;
  models::VitClassifier serial(vc);
  auto x = t::randn(t::Shape{2, vc.patches, vc.patch_dim}, 4);
  auto ref = serial.logits(x);

  World w(tp_cfg(core::TpMode::k1d, 2));
  std::vector<t::Tensor> lg(2);
  w.cluster.run([&](int g) {
    models::VitClassifier model(w.env(g), models::VitClassifier::Mode::kTensor1D,
                                vc);
    lg[static_cast<std::size_t>(g)] = model.logits(x);
  });
  EXPECT_TRUE(t::allclose(lg[0], ref, 1e-3f));
  EXPECT_TRUE(t::allclose(lg[1], ref, 1e-3f));
}

TEST(Vit, SequenceParallelTrainStepMatchesSerial) {
  models::VitClassifier::Config vc;
  vc.seed = 13;
  auto x = t::randn(t::Shape{2, vc.patches, vc.patch_dim}, 14);
  std::vector<std::int64_t> labels{1, 7};

  models::VitClassifier serial(vc);
  const float ref_loss = serial.train_batch(x, labels);

  core::Config cfg;
  cfg.sequence_parallel_size = 4;
  World w(cfg);
  std::vector<float> loss(4);
  std::vector<t::Tensor> head_grad(4);
  w.cluster.run([&](int g) {
    models::VitClassifier model(w.env(g), models::VitClassifier::Mode::kSequence,
                                vc);
    loss[static_cast<std::size_t>(g)] = model.train_batch(x, labels);
    auto params = model.parameters();
    head_grad[static_cast<std::size_t>(g)] = params.back()->grad.clone();
  });
  auto ref_head_grad = serial.parameters().back()->grad;
  for (int g = 0; g < 4; ++g) {
    EXPECT_NEAR(loss[static_cast<std::size_t>(g)], ref_loss, 1e-4f) << g;
    EXPECT_TRUE(t::allclose(head_grad[static_cast<std::size_t>(g)],
                            ref_head_grad, 1e-3f))
        << g;
  }
}

// ---- engine & trainer -----------------------------------------------------------------

TEST(Engine, ListingOneLoopTrains) {
  core::Config cfg;  // single rank
  World w(cfg);
  data::SyntheticClassification ds(512, 8, 4, 21);

  w.cluster.run([&](int g) {
    (void)g;
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("l1", 8, 16, 31));
    net.add(std::make_unique<nn::Gelu>());
    net.add(std::make_unique<nn::Linear>("l2", 16, 4, 32));
    auto eng = engine::initialize(
        w.env(0), net,
        std::make_unique<ca::optim::Adam>(net.parameters(),
                                          ca::optim::Adam::Hyper{0.01f}));
    float first = 0.0f, last = 0.0f;
    for (int s = 0; s < 30; ++s) {
      auto x = ds.batch_features(s * 16, 16);
      auto y = ds.batch_labels(s * 16, 16);
      eng->zero_grad();
      auto out = eng->forward(x);
      const float loss = eng->criterion(out, y);
      eng->backward();
      eng->step();
      if (s == 0) first = loss;
      last = loss;
    }
    EXPECT_LT(last, first * 0.8f);
  });
}

TEST(Engine, DataParallelMatchesSerialFullBatch) {
  // 2 DP ranks on half batches each == serial on the full batch (mean CE
  // gradients average across ranks).
  data::SyntheticClassification ds(512, 6, 3, 41);
  const std::int64_t global_batch = 8;

  // serial reference
  nn::Linear serial("m", 6, 3, 42);
  ca::optim::Sgd sref(serial.parameters(), 0.1f);
  {
    auto x = ds.batch_features(0, global_batch);
    auto y = ds.batch_labels(0, global_batch);
    t::Tensor dl;
    auto out = serial.forward(x);
    t::cross_entropy(out, y, dl);
    serial.backward(dl);
    sref.step();
  }

  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  std::vector<t::Tensor> weights(2);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 6, 3, 42);
    auto eng = engine::initialize(
        w.env(g), model,
        std::make_unique<ca::optim::Sgd>(model.parameters(), 0.1f));
    data::DataLoader loader(ds, global_batch, g, 2);
    auto batch = loader.next(0);
    eng->zero_grad();
    auto out = eng->forward(batch.x);
    eng->criterion(out, batch.labels);
    eng->backward();
    eng->step();
    weights[static_cast<std::size_t>(g)] = model.weight().value.clone();
  });
  EXPECT_TRUE(t::allclose(weights[0], serial.weight().value, 1e-5f));
  EXPECT_TRUE(t::allclose(weights[1], serial.weight().value, 1e-5f));
}

TEST(Trainer, HooksFireAndLossRecorded) {
  core::Config cfg;
  World w(cfg);
  data::SyntheticClassification ds(256, 6, 3, 51);
  w.cluster.run([&](int g) {
    (void)g;
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("l", 6, 3, 52));
    auto eng = engine::initialize(
        w.env(0), net,
        std::make_unique<ca::optim::Sgd>(net.parameters(), 0.1f));
    engine::Trainer trainer(*eng);
    auto& history =
        trainer.register_hook(std::make_unique<engine::LossHistoryHook>());

    struct CountingHook : engine::TrainerHook {
      int epochs = 0, steps = 0;
      void after_epoch(int, float) override { ++epochs; }
      void before_step(int) override { ++steps; }
    };
    auto& counter = trainer.register_hook(std::make_unique<CountingHook>());

    data::DataLoader loader(ds, 8, 0, 1);
    const float mean = trainer.fit(loader, /*epochs=*/2, /*steps=*/4);
    EXPECT_EQ(counter.epochs, 2);
    EXPECT_EQ(counter.steps, 8);
    EXPECT_EQ(history.losses().size(), 8u);
    EXPECT_GT(mean, 0.0f);
  });
}

// ---- ZeRO engine: the Listing-1 loop over sharded model states ----------------------

#include "engine/zero_engine.hpp"

namespace {

/// Serial reference for the ZeRO-engine runs: Adam on the full batch.
t::Tensor zero_engine_serial(int steps) {
  data::SyntheticClassification ds(512, 6, 3, 61);
  nn::Linear model("m", 6, 3, 62);
  ca::optim::Adam opt(model.parameters(), {});
  for (int s = 0; s < steps; ++s) {
    auto x = ds.batch_features(s * 8, 8);
    auto y = ds.batch_labels(s * 8, 8);
    opt.zero_grad();
    auto out = model.forward(x);
    t::Tensor dl;
    t::cross_entropy(out, y, dl);
    model.backward(dl);
    opt.step();
  }
  return model.weight().value.clone();
}

}  // namespace

class ZeroEngineStage : public ::testing::TestWithParam<int> {};

TEST_P(ZeroEngineStage, ListingLoopMatchesSerialAdam) {
  const int stage = GetParam();
  const int steps = 3;
  auto ref = zero_engine_serial(steps);

  // 2 DP ranks, each seeing the FULL batch (average=true divides the 2x sum)
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  data::SyntheticClassification ds(512, 6, 3, 61);
  std::vector<t::Tensor> weights(2);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 6, 3, 62);
    engine::ZeroEngine eng(w.env(g), model, {}, stage);
    for (int s = 0; s < steps; ++s) {
      auto x = ds.batch_features(s * 8, 8);
      auto y = ds.batch_labels(s * 8, 8);
      eng.zero_grad();
      auto out = eng.forward(x);
      eng.criterion(out, y);
      eng.backward();
      eng.step();
    }
    // read back the final full parameters
    eng.optimizer().gather_params();
    weights[static_cast<std::size_t>(g)] = model.weight().value.clone();
  });
  EXPECT_TRUE(t::allclose(weights[0], ref, 1e-5f)) << "stage " << stage;
  EXPECT_TRUE(t::allclose(weights[1], ref, 1e-5f)) << "stage " << stage;
}

INSTANTIATE_TEST_SUITE_P(Stages, ZeroEngineStage, ::testing::Values(1, 2, 3));

TEST(ZeroEngineStage, Stage3HidesParamsOutsideWindow) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  w.cluster.run([&](int g) {
    nn::Linear model("m", 4, 4, 71);
    engine::ZeroEngine eng(w.env(g), model, {}, 3);
    EXPECT_EQ(model.weight().value.numel(), 0);  // sharded away
    auto x = t::randn(t::Shape{2, 4}, 72);
    auto out = eng.forward(x);  // gathered inside the window
    EXPECT_EQ(model.weight().value.numel(), 16);
    std::vector<std::int64_t> y{0, 1};
    eng.criterion(out, y);
    eng.backward();
    eng.step();
    EXPECT_EQ(model.weight().value.numel(), 0);  // released again
  });
}

TEST(Engine, BucketedDpMatchesSingleRankTrajectoryExactly) {
  // 4 DP ranks each training on the FULL batch with averaged gradients must
  // reproduce the single-rank loss trajectory bit-for-bit: the bucketed
  // async all-reduce averages 4 identical gradients (sum * 1/4 is exact in
  // binary), so weights never diverge.
  const int steps = 6;
  const int world = 4;
  data::SyntheticClassification ds(512, 8, 4, 71);

  auto run_single = [&]() {
    std::vector<float> losses;
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("l1", 8, 16, 72));
    net.add(std::make_unique<nn::Gelu>());
    net.add(std::make_unique<nn::Linear>("l2", 16, 4, 73));
    core::Config cfg;  // single rank
    World w(cfg);
    w.cluster.run([&](int g) {
      (void)g;
      auto eng = engine::initialize(
          w.env(0), net,
          std::make_unique<ca::optim::Adam>(net.parameters(),
                                            ca::optim::Adam::Hyper{0.01f}));
      for (int s = 0; s < steps; ++s) {
        auto x = ds.batch_features(s * 16, 16);
        auto y = ds.batch_labels(s * 16, 16);
        eng->zero_grad();
        auto out = eng->forward(x);
        losses.push_back(eng->criterion(out, y));
        eng->backward();
        eng->step();
      }
    });
    return losses;
  };
  const auto ref = run_single();

  core::Config cfg;
  cfg.data_parallel_size = world;
  World w(cfg);
  std::vector<std::vector<float>> losses(static_cast<std::size_t>(world));
  w.cluster.run([&](int g) {
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("l1", 8, 16, 72));
    net.add(std::make_unique<nn::Gelu>());
    net.add(std::make_unique<nn::Linear>("l2", 16, 4, 73));
    engine::Engine::Options opts;  // bucketed is the default; force small
    opts.bucket_bytes = 256;       // buckets so several reduces are in flight
    auto eng = engine::initialize(
        w.env(g), net,
        std::make_unique<ca::optim::Adam>(net.parameters(),
                                          ca::optim::Adam::Hyper{0.01f}),
        opts);
    for (int s = 0; s < steps; ++s) {
      auto x = ds.batch_features(s * 16, 16);
      auto y = ds.batch_labels(s * 16, 16);
      eng->zero_grad();
      auto out = eng->forward(x);
      losses[static_cast<std::size_t>(g)].push_back(eng->criterion(out, y));
      eng->backward();
      eng->step();
    }
  });
  for (int g = 0; g < world; ++g) {
    ASSERT_EQ(losses[static_cast<std::size_t>(g)].size(), ref.size());
    for (int s = 0; s < steps; ++s) {
      // bit-identical, not just close
      ASSERT_EQ(losses[static_cast<std::size_t>(g)][static_cast<std::size_t>(s)],
                ref[static_cast<std::size_t>(s)])
          << "rank " << g << " step " << s;
    }
  }
}

TEST(Engine, BucketedAndSerialGradSyncProduceIdenticalWeights) {
  data::SyntheticClassification ds(512, 6, 3, 81);
  core::Config cfg;
  cfg.data_parallel_size = 2;

  auto run_mode = [&](engine::Engine::Options::GradSync mode) {
    World w(cfg);
    std::vector<t::Tensor> weights(2);
    w.cluster.run([&](int g) {
      nn::Sequential net;
      net.add(std::make_unique<nn::Linear>("m", 6, 3, 82));
      engine::Engine::Options opts;
      opts.grad_sync = mode;
      opts.bucket_bytes = 64;
      auto eng = engine::initialize(
          w.env(g), net,
          std::make_unique<ca::optim::Sgd>(net.parameters(), 0.1f), opts);
      data::DataLoader loader(ds, 8, g, 2);
      for (int s = 0; s < 4; ++s) {
        auto batch = loader.next(s);
        eng->zero_grad();
        auto out = eng->forward(batch.x);
        eng->criterion(out, batch.labels);
        eng->backward();
        eng->step();
      }
      auto params = net.parameters();
      weights[static_cast<std::size_t>(g)] = params[0]->value.clone();
    });
    EXPECT_EQ(t::max_diff(weights[0], weights[1]), 0.0f);
    return weights[0];
  };

  auto bucketed = run_mode(engine::Engine::Options::GradSync::kBucketed);
  auto serial = run_mode(engine::Engine::Options::GradSync::kSerial);
  EXPECT_EQ(t::max_diff(bucketed, serial), 0.0f);
}
