// Property-based sweeps (parameterized gtest): algebraic invariants of the
// collectives, fp16 conversion, shape ops, the memory models, and a
// cross-size/cross-mode exactness sweep of the tensor-parallel linears.

#include <gtest/gtest.h>

#include <random>

#include "collective/backend.hpp"
#include "sp/memory_model.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "tp/linear1d.hpp"
#include "tp/linear2d.hpp"
#include "tp/linear2p5d.hpp"
#include "tp/linear3d.hpp"
#include "tp/memory_model.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;

// ---- collective algebra -------------------------------------------------------------

class CollectiveAlgebra : public ::testing::TestWithParam<int> {
 protected:
  struct W {
    explicit W(int n) : cluster(sim::Topology::uniform(n, 100e9)), backend(cluster) {}
    sim::Cluster cluster;
    col::Backend backend;
  };
};

TEST_P(CollectiveAlgebra, AllReduceEqualsSumOfInputs) {
  const int p = GetParam();
  W w(p);
  const std::size_t n = 37;  // deliberately not a multiple of p
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(p));
  std::vector<float> expect(n, 0.0f);
  std::mt19937 gen(7);
  for (int r = 0; r < p; ++r) {
    bufs[static_cast<std::size_t>(r)].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float v = std::uniform_real_distribution<float>(-1, 1)(gen);
      bufs[static_cast<std::size_t>(r)][i] = v;
      expect[i] += v;
    }
  }
  w.cluster.run([&](int r) {
    w.backend.world().all_reduce(r, bufs[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(bufs[static_cast<std::size_t>(r)][i], expect[i], 1e-5f);
}

TEST_P(CollectiveAlgebra, ReduceScatterThenAllGatherEqualsAllReduce) {
  const int p = GetParam();
  W w1(p), w2(p);
  const std::size_t chunk = 5;
  const std::size_t n = chunk * static_cast<std::size_t>(p);

  std::vector<std::vector<float>> a(static_cast<std::size_t>(p)),
      b(static_cast<std::size_t>(p));
  std::mt19937 gen(9);
  for (int r = 0; r < p; ++r) {
    a[static_cast<std::size_t>(r)].resize(n);
    for (auto& v : a[static_cast<std::size_t>(r)])
      v = std::uniform_real_distribution<float>(-1, 1)(gen);
    b[static_cast<std::size_t>(r)] = a[static_cast<std::size_t>(r)];
  }
  w1.cluster.run([&](int r) {
    w1.backend.world().all_reduce(r, a[static_cast<std::size_t>(r)]);
  });
  w2.cluster.run([&](int r) {
    std::vector<float> shard(chunk);
    w2.backend.world().reduce_scatter(r, b[static_cast<std::size_t>(r)], shard);
    w2.backend.world().all_gather(r, shard, b[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(a[static_cast<std::size_t>(r)][i],
                  b[static_cast<std::size_t>(r)][i], 1e-5f);
}

TEST_P(CollectiveAlgebra, AllToAllIsAnInvolution) {
  const int p = GetParam();
  W w(p);
  const std::size_t n = static_cast<std::size_t>(p) * 3;
  std::vector<std::vector<float>> orig(static_cast<std::size_t>(p)),
      cur(static_cast<std::size_t>(p));
  std::mt19937 gen(11);
  for (int r = 0; r < p; ++r) {
    orig[static_cast<std::size_t>(r)].resize(n);
    for (auto& v : orig[static_cast<std::size_t>(r)])
      v = std::uniform_real_distribution<float>(-1, 1)(gen);
    cur[static_cast<std::size_t>(r)] = orig[static_cast<std::size_t>(r)];
  }
  w.cluster.run([&](int r) {
    std::vector<float> tmp(n);
    w.backend.world().all_to_all(r, cur[static_cast<std::size_t>(r)], tmp);
    w.backend.world().all_to_all(r, tmp, cur[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(cur[static_cast<std::size_t>(r)], orig[static_cast<std::size_t>(r)]);
}

TEST_P(CollectiveAlgebra, BroadcastMakesAllBuffersEqualRoot) {
  const int p = GetParam();
  W w(p);
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(p),
                                       std::vector<float>(4));
  for (int r = 0; r < p; ++r)
    for (int i = 0; i < 4; ++i)
      bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          static_cast<float>(r * 10 + i);
  const int root = p - 1;
  w.cluster.run([&](int r) {
    w.backend.world().broadcast(r, bufs[static_cast<std::size_t>(r)], root);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)],
              bufs[static_cast<std::size_t>(root)]);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveAlgebra,
                         ::testing::Values(2, 3, 4, 5, 8));

// ---- fp16 properties -----------------------------------------------------------------

TEST(HalfProperties, RoundTripIsIdempotent) {
  auto xs = t::randn(t::Shape{2000}, 13, 0.0f, 100.0f);
  for (float v : xs.data()) {
    const float once = t::fp16_round_trip(v);
    EXPECT_EQ(t::fp16_round_trip(once), once);
  }
}

TEST(HalfProperties, PreservesOrdering) {
  auto xs = t::uniform(t::Shape{1000}, 17, -50.0f, 50.0f);
  auto ys = t::uniform(t::Shape{1000}, 18, -50.0f, 50.0f);
  for (std::int64_t i = 0; i < 1000; ++i) {
    const float a = xs[i], b = ys[i];
    if (a <= b) {
      EXPECT_LE(t::fp16_round_trip(a), t::fp16_round_trip(b));
    } else {
      EXPECT_GE(t::fp16_round_trip(a), t::fp16_round_trip(b));
    }
  }
}

TEST(HalfProperties, NegationSymmetry) {
  auto xs = t::randn(t::Shape{500}, 19, 0.0f, 10.0f);
  for (float v : xs.data())
    EXPECT_EQ(t::fp16_round_trip(-v), -t::fp16_round_trip(v));
}

// ---- shape-op properties ----------------------------------------------------------------

class ChunkCatProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChunkCatProperty, CatOfChunksIsIdentity) {
  const auto [dim, parts] = GetParam();
  auto x = t::randn(t::Shape{12, 12, 12}, 23);  // divisible by 2, 3, and 4
  std::vector<t::Tensor> chunks;
  for (int i = 0; i < parts; ++i) chunks.push_back(t::chunk(x, dim, parts, i));
  EXPECT_EQ(t::max_diff(t::cat(chunks, dim), x), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(DimsAndParts, ChunkCatProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(2, 3, 4)));

// ---- memory-model monotonicity -------------------------------------------------------------

class MemoryMonotonic : public ::testing::TestWithParam<core::TpMode> {};

TEST_P(MemoryMonotonic, PeakGrowsWithBatchAndHidden) {
  const auto mode = GetParam();
  const int p = mode == core::TpMode::k2p5d || mode == core::TpMode::k3d ? 8 : 4;
  const int depth = mode == core::TpMode::k2p5d ? 2 : 1;
  std::int64_t prev = 0;
  for (std::int64_t b : {64, 128, 256}) {
    const auto peak = tp::two_layer_peak(mode, {b * 64, 1024, 4}, p, depth);
    EXPECT_GT(peak, prev);
    prev = peak;
  }
  prev = 0;
  for (std::int64_t h : {512, 1024, 2048}) {
    const auto peak = tp::two_layer_peak(mode, {4096, h, 4}, p, depth);
    EXPECT_GT(peak, prev);
    prev = peak;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, MemoryMonotonic,
                         ::testing::Values(core::TpMode::k1d, core::TpMode::k2d,
                                           core::TpMode::k2p5d,
                                           core::TpMode::k3d));

TEST(SpMemoryProperties, MorePartitionsNeverIncreasePeak) {
  ca::sp::BertShape s;
  s.batch = 64;
  s.seq = 512;
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (int p : {2, 4, 8, 16}) {
    const auto peak = ca::sp::bert_peak_sp(s, p);
    EXPECT_LE(peak, prev);
    prev = peak;
  }
}

// ---- tensor-parallel exactness sweep ---------------------------------------------------------

struct TpSweepCase {
  core::TpMode mode;
  int p;
  int depth;
  std::int64_t rows, in, out;
  std::uint64_t seed;
};

class TpExactnessSweep : public ::testing::TestWithParam<TpSweepCase> {};

TEST_P(TpExactnessSweep, LinearForwardBackwardMatchSerial) {
  const auto c = GetParam();
  core::Config cfg;
  cfg.tensor_parallel_size = c.p;
  cfg.tensor_mode = c.mode;
  cfg.tensor_depth = c.depth;
  sim::Cluster cluster(sim::Topology::uniform(c.p, 100e9));
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, cfg);
  ctx.set_comm_dtype(t::Dtype::kF32);  // serial-equivalence test: fp32 wire

  nn::Linear serial("l", c.in, c.out, c.seed);
  auto x = t::randn(t::Shape{c.rows, c.in}, c.seed + 1);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{c.rows, c.out}, c.seed + 2);
  auto dx_ref = serial.backward(dy);

  std::vector<bool> ok(static_cast<std::size_t>(c.p), false);
  cluster.run([&](int g) {
    tp::Env env{&ctx, g};
    t::Tensor y, dx, y_expect, dx_expect;
    switch (c.mode) {
      case core::TpMode::k1d: {
        tp::Linear1DCol lin(env, "l", c.in, c.out, c.seed, true);
        y = lin.forward(x);
        dx = lin.backward(dy);
        y_expect = y_ref;
        dx_expect = dx_ref;
        break;
      }
      case core::TpMode::k2d: {
        const int q = ctx.grid_side();
        const int r = ctx.row_coord(g), cc = ctx.col_coord(g);
        tp::Linear2D lin(env, "l", c.in, c.out, c.seed);
        y = lin.forward(tp::Linear2D::shard_activation(x, q, r, cc));
        dx = lin.backward(tp::Linear2D::shard_activation(dy, q, r, cc));
        y_expect = tp::Linear2D::shard_activation(y_ref, q, r, cc);
        dx_expect = tp::Linear2D::shard_activation(dx_ref, q, r, cc);
        break;
      }
      case core::TpMode::k2p5d: {
        const int q = ctx.grid_side(), d = ctx.depth();
        const int dd = ctx.depth_coord(g), r = ctx.row_coord(g),
                  cc = ctx.col_coord(g);
        tp::Linear2p5D lin(env, "l", c.in, c.out, c.seed);
        y = lin.forward(tp::Linear2p5D::shard_activation(x, q, d, dd, r, cc));
        dx = lin.backward(tp::Linear2p5D::shard_activation(dy, q, d, dd, r, cc));
        y_expect = tp::Linear2p5D::shard_activation(y_ref, q, d, dd, r, cc);
        dx_expect = tp::Linear2p5D::shard_activation(dx_ref, q, d, dd, r, cc);
        break;
      }
      case core::TpMode::k3d: {
        const int l = ctx.grid_side();
        const int i = ctx.cube_i(g), j = ctx.cube_j(g), k = ctx.cube_k(g);
        tp::Linear3D lin(env, "l", c.in, c.out, c.seed);
        y = lin.forward(tp::Linear3D::shard_input(x, l, i, j, k));
        dx = lin.backward(tp::Linear3D::shard_output(dy, l, i, j, k));
        y_expect = tp::Linear3D::shard_output(y_ref, l, i, j, k);
        dx_expect = tp::Linear3D::shard_input(dx_ref, l, i, j, k);
        break;
      }
      default:
        return;
    }
    ok[static_cast<std::size_t>(g)] =
        t::allclose(y, y_expect, 1e-4f) && t::allclose(dx, dx_expect, 1e-4f);
  });
  for (int g = 0; g < c.p; ++g)
    EXPECT_TRUE(ok[static_cast<std::size_t>(g)]) << "rank " << g;
}

INSTANTIATE_TEST_SUITE_P(
    ModesSizesSeeds, TpExactnessSweep,
    ::testing::Values(
        TpSweepCase{core::TpMode::k1d, 2, 1, 6, 10, 8, 100},
        TpSweepCase{core::TpMode::k1d, 8, 1, 16, 24, 16, 200},
        TpSweepCase{core::TpMode::k2d, 4, 1, 10, 6, 14, 300},
        TpSweepCase{core::TpMode::k2d, 9, 1, 12, 9, 27, 400},
        TpSweepCase{core::TpMode::k2p5d, 8, 2, 16, 12, 10, 500},
        TpSweepCase{core::TpMode::k2p5d, 12, 3, 18, 24, 8, 600},
        TpSweepCase{core::TpMode::k3d, 8, 1, 12, 16, 20, 700},
        TpSweepCase{core::TpMode::k3d, 27, 1, 27, 18, 36, 800}));
