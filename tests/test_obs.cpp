// Observability subsystem tests: trace spans (RAII, nesting, clock
// monotonicity, disabled-path inertness), the cluster tracing lifecycle
// (enable/disable/reset, memory samplers), the exporters (Chrome trace JSON,
// summary report), and the MemoryTracker edge cases the tracer leans on.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "collective/backend.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"

namespace sim = ca::sim;
namespace obs = ca::obs;
namespace col = ca::collective;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

// ---- MemoryTracker edge cases -----------------------------------------------

TEST(MemoryTracker, AvailableOnUnlimitedPoolIsHuge) {
  sim::MemoryTracker mem("pool", 0);  // capacity <= 0 => unlimited
  EXPECT_EQ(mem.available(), std::int64_t{1} << 62);
  mem.alloc(std::int64_t{100} << 30);  // no OOM, available unchanged
  EXPECT_EQ(mem.available(), std::int64_t{1} << 62);
}

TEST(MemoryTracker, OomErrorCarriesAccountingFields) {
  sim::MemoryTracker mem("gpu0", 1000);
  mem.alloc(800);
  try {
    mem.alloc(300);
    FAIL() << "expected OomError";
  } catch (const sim::OomError& e) {
    EXPECT_EQ(e.requested(), 300);
    EXPECT_EQ(e.in_use(), 800);
    EXPECT_EQ(e.capacity(), 1000);
    EXPECT_NE(std::string(e.what()).find("gpu0"), std::string::npos);
  }
  EXPECT_EQ(mem.current(), 800);  // failed alloc must not be charged
}

TEST(MemoryTracker, ScopedAllocMoveTransfersOwnership) {
  sim::MemoryTracker mem("m", 0);
  {
    sim::ScopedAlloc a(mem, 64);
    EXPECT_EQ(mem.current(), 64);
    sim::ScopedAlloc b(std::move(a));
    EXPECT_EQ(b.bytes(), 64);
    EXPECT_EQ(mem.current(), 64);  // moved-from must not double-free...
  }
  EXPECT_EQ(mem.current(), 0);  // ...and the new owner frees exactly once
}

TEST(MemoryTracker, SampleHookFiresOnAllocAndFree) {
  sim::MemoryTracker mem("m", 0);
  std::vector<std::int64_t> samples;
  mem.set_sample_hook([&](std::int64_t cur) { samples.push_back(cur); });
  mem.alloc(10);
  mem.alloc(5);
  mem.free(10);
  EXPECT_EQ(samples, (std::vector<std::int64_t>{10, 15, 5}));
  mem.set_sample_hook(nullptr);
  mem.alloc(1);  // detached: no further samples
  EXPECT_EQ(samples.size(), 3u);
}

// ---- spans and buffers ------------------------------------------------------

TEST(TraceSpan, NestingAndClockMonotonicity) {
  double clock = 1.0;
  obs::TraceBuffer buf;
  buf.bind_clock(&clock);
  {
    obs::TraceSpan outer(&buf, obs::Category::kMarker, "outer");
    clock = 2.0;
    {
      obs::TraceSpan inner(&buf, obs::Category::kCompute, "inner", 0, 7.0);
      clock = 3.0;
    }  // inner closes first (LIFO)
    clock = 4.0;
  }
  ASSERT_EQ(buf.events().size(), 2u);
  const auto& inner = buf.events()[0];
  const auto& outer = buf.events()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.t0, 2.0);
  EXPECT_EQ(inner.t1, 3.0);
  EXPECT_EQ(inner.flops, 7.0);
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.t0, 1.0);
  EXPECT_EQ(outer.t1, 4.0);
  // nesting: the outer span contains the inner one
  EXPECT_LE(outer.t0, inner.t0);
  EXPECT_GE(outer.t1, inner.t1);
  for (const auto& e : buf.events()) {
    EXPECT_LE(e.t0, e.t1);
    EXPECT_LE(e.t_issue, e.t0);
  }
}

TEST(TraceSpan, NullBufferIsInertAndFinishIsIdempotent) {
  obs::TraceSpan inert(nullptr, obs::Category::kCompute, "x");
  inert.finish();  // no crash
  double clock = 0.0;
  obs::TraceBuffer buf;
  buf.bind_clock(&clock);
  obs::TraceSpan s(&buf, obs::Category::kCompute, "y");
  clock = 1.0;
  s.finish();
  clock = 2.0;
  s.finish();  // second finish must not emit again
  ASSERT_EQ(buf.events().size(), 1u);
  EXPECT_EQ(buf.events()[0].t1, 1.0);
}

TEST(TraceSpan, MoveTransfersTheOpenSpan) {
  double clock = 0.0;
  obs::TraceBuffer buf;
  buf.bind_clock(&clock);
  obs::TraceSpan a(&buf, obs::Category::kCompute, "moved");
  obs::TraceSpan b(std::move(a));
  a.finish();  // moved-from: inert
  EXPECT_TRUE(buf.events().empty());
  clock = 5.0;
  b.finish();
  ASSERT_EQ(buf.events().size(), 1u);
  EXPECT_EQ(buf.events()[0].t1, 5.0);
}

// ---- cluster tracing lifecycle ----------------------------------------------

TEST(ClusterTracing, DeviceSpansStampSimulatedClockPerRank) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  auto& tracer = cluster.enable_tracing();
  cluster.run([&](int r) {
    cluster.device(r).compute_fp16(250e12 * 1e-3);  // 1 simulated ms
    cluster.device(r).compute_fp32(120e12 * 2e-3, "tail");
  });
  for (int r = 0; r < 2; ++r) {
    const auto& ev = tracer.rank(r).events();
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].name, "fp16");
    EXPECT_EQ(ev[1].name, "tail");
    EXPECT_NEAR(ev[0].t1 - ev[0].t0, 1e-3, 1e-9);
    // per-rank clock monotonicity: events appear in nondecreasing time order
    EXPECT_LE(ev[0].t1, ev[1].t0 + 1e-12);
  }
}

TEST(ClusterTracing, CommSpansCarryGroupNameBytesAndIssueClock) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  auto& tracer = cluster.enable_tracing();
  cluster.run([&](int r) {
    cluster.device(r).compute_fp16(250e12 * 1e-4);
    std::vector<float> v(256, 1.0f);
    backend.world().all_reduce(r, v);
  });
  for (int r = 0; r < 2; ++r) {
    const obs::TraceEvent* comm = nullptr;
    for (const auto& e : tracer.rank(r).events())
      if (e.cat == obs::Category::kComm) comm = &e;
    ASSERT_NE(comm, nullptr);
    EXPECT_EQ(comm->name, "world.all_reduce");
    EXPECT_EQ(comm->bytes, 256 * 4);
    EXPECT_LE(comm->t_issue, comm->t0);
    EXPECT_GT(comm->t1, comm->t0);
    EXPECT_GE(comm->alpha, 0.0);
    EXPECT_LE(comm->alpha, comm->t1 - comm->t0 + 1e-12);
  }
}

TEST(ClusterTracing, MemorySamplerRecordsDeviceTimeline) {
  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  auto& tracer = cluster.enable_tracing();
  cluster.run([&](int r) {
    auto& d = cluster.device(r);
    d.mem().alloc(1024);
    d.compute_fp16(250e12 * 1e-3);
    d.mem().alloc(2048);
    d.mem().free(1024);
  });
  const auto& tl = tracer.rank(0).mem_timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].second, 1024);
  EXPECT_EQ(tl[1].second, 3072);
  EXPECT_EQ(tl[2].second, 2048);
  EXPECT_LT(tl[0].first, tl[1].first);  // second alloc after the compute
}

TEST(ClusterTracing, DisableDetachesAndResetStatsClearsEverything) {
  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  auto& tracer = cluster.enable_tracing();
  cluster.run([&](int r) { cluster.device(r).compute_fp16(1e9); });
  EXPECT_FALSE(tracer.rank(0).events().empty());

  cluster.nvme_mem().alloc(4096);
  cluster.reset_stats();  // must clear events AND the nvme pool accounting
  EXPECT_TRUE(tracer.rank(0).events().empty());
  EXPECT_EQ(cluster.nvme_mem().current(), 0);
  EXPECT_EQ(cluster.nvme_mem().peak(), 0);

  cluster.disable_tracing();
  EXPECT_EQ(cluster.device(0).trace(), nullptr);
  cluster.run([&](int r) {
    cluster.device(r).compute_fp16(1e9);
    cluster.device(r).mem().alloc(64);
  });
  EXPECT_TRUE(tracer.rank(0).events().empty());
  EXPECT_TRUE(tracer.rank(0).mem_timeline().empty());
}

// ---- exporters --------------------------------------------------------------

TEST(Exporters, ChromeTraceIsWellFormedJson) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  cluster.enable_tracing();
  cluster.run([&](int r) {
    cluster.device(r).mem().alloc(512);
    cluster.device(r).compute_fp16(250e12 * 1e-4, "warm \"up\"\n");
    std::vector<float> v(64, 1.0f);
    backend.world().all_reduce(r, v);
  });

  TempFile f("test_trace_out.json");
  ASSERT_TRUE(obs::write_chrome_trace(*cluster.tracer(), f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"rank0\""), std::string::npos);
  EXPECT_NE(body.find("\"rank1\""), std::string::npos);
  EXPECT_NE(body.find("world.all_reduce"), std::string::npos);
  // the quote and newline in the span name must be escaped
  EXPECT_NE(body.find("warm \\\"up\\\"\\n"), std::string::npos);
  EXPECT_EQ(body.find("warm \"up\"\n"), std::string::npos);
  // memory counter track for the device pool
  EXPECT_NE(body.find("gpu0 mem"), std::string::npos);
  // balanced braces/brackets (cheap well-formedness check, no JSON parser)
  EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
            std::count(body.begin(), body.end(), '}'));
  EXPECT_EQ(std::count(body.begin(), body.end(), '['),
            std::count(body.begin(), body.end(), ']'));
}

TEST(Exporters, SummaryComputesFractionsBytesAndOverlap) {
  obs::Tracer tracer(1);
  // Hand-built timeline: 10 ms compute, comm [2, 6] ms fully under it, and
  // comm [12, 14] ms fully exposed. wall = 14 ms, busy = [0,10]+[12,14].
  tracer.rank(0).add({"gemm", obs::Category::kCompute, 0.0, 0.010, 0.0, 0, 1e9,
                      0.0, {}, {}});
  tracer.rank(0).add({"data.all_reduce", obs::Category::kComm, 0.002, 0.006,
                      0.002, 1000, 0.0, 0.0005, {}, "bf16"});
  tracer.rank(0).add({"data.all_gather", obs::Category::kComm, 0.012, 0.014,
                      0.012, 500, 0.0, 0.0, {}, {}});
  tracer.rank(0).add({"step", obs::Category::kMarker, 0.0, 0.014, 0.0, 0, 0.0,
                      0.0, {}, {}});

  const auto rep = obs::summarize(tracer);
  EXPECT_NEAR(rep.wall, 0.014, 1e-12);
  ASSERT_EQ(rep.ranks.size(), 1u);
  const auto& r0 = rep.ranks[0];
  EXPECT_NEAR(r0.seconds[static_cast<int>(obs::Category::kCompute)], 0.010, 1e-12);
  EXPECT_NEAR(r0.seconds[static_cast<int>(obs::Category::kComm)], 0.006, 1e-12);
  EXPECT_NEAR(r0.busy, 0.012, 1e-12);          // markers don't count as busy
  EXPECT_NEAR(r0.comm_overlap, 0.004, 1e-12);  // only the hidden all_reduce
  EXPECT_NEAR(rep.comm_overlap_fraction, 0.004 / 0.006, 1e-9);
  EXPECT_NEAR(rep.bubble_fraction, (0.014 - 0.012) / 0.014, 1e-9);
  ASSERT_EQ(rep.comm_bytes.count("data"), 1u);
  EXPECT_EQ(rep.comm_bytes.at("data"), 1500);
  // per-wire-dtype split: tagged comm under its tag, untagged counts as f32
  ASSERT_EQ(rep.comm_bytes_by_dtype.count("bf16"), 1u);
  EXPECT_EQ(rep.comm_bytes_by_dtype.at("bf16"), 1000);
  ASSERT_EQ(rep.comm_bytes_by_dtype.count("f32"), 1u);
  EXPECT_EQ(rep.comm_bytes_by_dtype.at("f32"), 500);

  TempFile f("test_report_out.json");
  ASSERT_TRUE(obs::write_report_json(rep, f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("\"comm_overlap_fraction\""), std::string::npos);
  EXPECT_NE(body.find("\"bubble_fraction\""), std::string::npos);
  EXPECT_NE(body.find("\"comm_bytes_by_dtype\""), std::string::npos);
  EXPECT_NE(body.find("\"comm_bytes\""), std::string::npos);
}

// ---- summarize edge cases ---------------------------------------------------

TEST(ReportEdge, EmptyTracerYieldsZeroedReport) {
  obs::Tracer tracer(2);
  const auto rep = obs::summarize(tracer);
  EXPECT_EQ(rep.wall, 0.0);
  ASSERT_EQ(rep.ranks.size(), 2u);
  for (const auto& r : rep.ranks) {
    EXPECT_EQ(r.wall, 0.0);
    EXPECT_EQ(r.busy, 0.0);
  }
  // no events: the fraction denominators are zero and must not divide
  EXPECT_EQ(rep.bubble_fraction, 0.0);
  EXPECT_EQ(rep.comm_overlap_fraction, 0.0);
  EXPECT_TRUE(rep.comm_bytes.empty());
  EXPECT_TRUE(rep.comm_bytes_by_dtype.empty());
  EXPECT_TRUE(rep.peak_mem.empty());
}

TEST(ReportEdge, MarkerOnlyTimelineCountsWallButNoBusy) {
  obs::Tracer tracer(1);
  tracer.rank(0).add({"epoch", obs::Category::kMarker, 0.0, 0.02, 0.0, 0, 0.0,
                      0.0, {}, {}});
  const auto rep = obs::summarize(tracer);
  // markers extend the wall but are annotations, not busy time: the whole
  // window reads as bubble
  EXPECT_NEAR(rep.wall, 0.02, 1e-12);
  EXPECT_EQ(rep.ranks[0].busy, 0.0);
  EXPECT_NEAR(rep.bubble_fraction, 1.0, 1e-12);
  EXPECT_EQ(rep.comm_overlap_fraction, 0.0);
}

TEST(ReportEdge, FullyHiddenCommHasOverlapFractionOne) {
  obs::Tracer tracer(1);
  tracer.rank(0).add({"gemm", obs::Category::kCompute, 0.0, 0.010, 0.0, 0, 1e9,
                      0.0, {}, {}});
  tracer.rank(0).add({"data.all_reduce", obs::Category::kComm, 0.002, 0.006,
                      0.002, 512, 0.0, 0.0, {}, {}});
  tracer.rank(0).add({"data.all_gather", obs::Category::kComm, 0.007, 0.009,
                      0.007, 256, 0.0, 0.0, {}, {}});
  const auto rep = obs::summarize(tracer);
  // every comm second sits under the compute span
  EXPECT_NEAR(rep.comm_overlap_fraction, 1.0, 1e-12);
  EXPECT_NEAR(rep.ranks[0].comm_overlap, 0.006, 1e-12);
  EXPECT_NEAR(rep.ranks[0].busy, 0.010, 1e-12);  // comm adds no busy time
}

TEST(ReportEdge, DtypeSplitMixesTaggedAndUntaggedSpans) {
  obs::Tracer tracer(2);
  // rank 0: tagged f16 + untagged; rank 1: tagged bf16 + tagged f16
  tracer.rank(0).add({"data.all_reduce", obs::Category::kComm, 0.0, 0.001, 0.0,
                      1000, 0.0, 0.0, {}, "f16"});
  tracer.rank(0).add({"data.all_reduce", obs::Category::kComm, 0.001, 0.002,
                      0.001, 300, 0.0, 0.0, {}, {}});
  tracer.rank(1).add({"tp.all_gather", obs::Category::kComm, 0.0, 0.001, 0.0,
                      700, 0.0, 0.0, {}, "bf16"});
  tracer.rank(1).add({"tp.all_gather", obs::Category::kComm, 0.001, 0.002,
                      0.001, 11, 0.0, 0.0, {}, "f16"});
  const auto rep = obs::summarize(tracer);
  EXPECT_EQ(rep.comm_bytes_by_dtype.at("f16"), 1011);
  EXPECT_EQ(rep.comm_bytes_by_dtype.at("bf16"), 700);
  EXPECT_EQ(rep.comm_bytes_by_dtype.at("f32"), 300);  // untagged counts as f32
  EXPECT_EQ(rep.comm_bytes.at("data"), 1300);  // group split is orthogonal
  EXPECT_EQ(rep.comm_bytes.at("tp"), 711);
}

TEST(Exporters, SharedPoolTimelinesSurfaceInPeakMem) {
  sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
  auto& tracer = cluster.enable_tracing();
  cluster.run([&](int) {
    cluster.host_mem().alloc(1 << 20);
    cluster.nvme_mem().alloc(1 << 22);
    cluster.host_mem().free(1 << 20);
  });
  ASSERT_EQ(tracer.pool_timelines().count("host"), 1u);
  ASSERT_EQ(tracer.pool_timelines().count("nvme"), 1u);
  const auto rep = obs::summarize(tracer);
  EXPECT_EQ(rep.peak_mem.at("host"), 1 << 20);
  EXPECT_EQ(rep.peak_mem.at("nvme"), 1 << 22);
}
