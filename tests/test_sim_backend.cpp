// Backend A/B matrix for the fiber scheduler (DESIGN.md section 8): the
// tasks backend must be observationally identical to the thread-per-rank
// oracle — bit-identical losses, simulated clocks, interconnect bytes, and
// trace summaries — across world sizes, worker counts, and fault scenarios,
// plus a 1024-rank smoke test with a wall-time ceiling and the knob-parsing
// surface (CA_SIM_BACKEND / CA_SIM_WORKERS / sim.backend / sim.workers).

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "collective/backend.hpp"
#include "collective/p2p.hpp"
#include "core/launch.hpp"
#include "obs/report.hpp"
#include "sim/cluster.hpp"
#include "sim/scheduler.hpp"

namespace col = ca::collective;
namespace core = ca::core;
namespace obs = ca::obs;
namespace sim = ca::sim;

namespace {

/// Save/restore one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

/// Everything one run observes; compared bitwise between backends.
struct RunResult {
  std::vector<float> losses;        // one per rank
  std::vector<double> clocks;       // per-device simulated clock after run
  std::vector<std::int64_t> bytes;  // per-device interconnect bytes
  obs::TraceReport report;
};

/// A mixed workload touching every blocking point the scheduler converts:
/// blocking collectives (rendezvous barriers), deferred async ops waited
/// out of order, and both p2p flavours (async ring + a sync send/recv pair).
RunResult run_workload(int world, sim::SimBackend backend, int workers) {
  sim::Cluster cluster(sim::Topology::uniform(world, 100e9));
  cluster.set_backend(backend);
  cluster.set_workers(workers);
  cluster.enable_tracing();
  col::Backend be(cluster);
  auto& g = be.world();

  std::vector<std::unique_ptr<col::P2pChannel>> ring;
  for (int r = 0; r < world; ++r) {
    ring.push_back(
        std::make_unique<col::P2pChannel>(cluster, r, (r + 1) % world));
  }

  RunResult res;
  res.losses.assign(static_cast<std::size_t>(world), 0.0f);
  cluster.run([&](int r) {
    const auto n = static_cast<std::size_t>(2048);
    std::vector<float> buf(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = std::sin(0.37f * static_cast<float>(i + 1)) *
               (1.0f + 0.13f * static_cast<float>(r));
    }
    g.all_reduce(r, buf, 1.0f / static_cast<float>(world));

    // Deferred async ops waited out of issue order (drain path).
    std::vector<float> a(512, 1.0f + static_cast<float>(r));
    std::vector<float> b(512, 2.0f);
    auto h1 = g.all_reduce_async(r, a);
    auto h2 = g.all_reduce_async(r, b);
    cluster.device(r).advance_clock(1e-4);
    h2.wait();
    h1.wait();

    // p2p ring: buffered send right, blocking recv left.
    std::vector<float> out(64, static_cast<float>(r));
    std::vector<float> in(64);
    ring[static_cast<std::size_t>(r)]->send_async(out);
    ring[static_cast<std::size_t>((r + world - 1) % world)]->recv(in);

    // And one synchronous (rendezvous) pair between ranks 0 and 1, the
    // do_send blocking path.
    if (r == 0) ring[0]->send(out);
    if (r == 1) ring[0]->recv(in);

    // reduce_scatter + all_gather round trip.
    std::vector<float> rs_in(static_cast<std::size_t>(world) * 128);
    for (std::size_t i = 0; i < rs_in.size(); ++i) {
      rs_in[i] = buf[i % n] + static_cast<float>(r) * 0.01f;
    }
    std::vector<float> rs_out(128);
    g.reduce_scatter(r, rs_in, rs_out);
    std::vector<float> ag_out(static_cast<std::size_t>(world) * 128);
    g.all_gather(r, rs_out, ag_out);

    float loss = 0.0f;
    for (float v : buf) loss += v;
    for (float v : a) loss += v * 0.5f;
    for (float v : in) loss += v * 0.25f;
    for (float v : ag_out) loss += v * 0.125f;
    res.losses[static_cast<std::size_t>(r)] = loss;
  });

  for (int r = 0; r < world; ++r) {
    res.clocks.push_back(cluster.device(r).clock());
    res.bytes.push_back(cluster.device(r).bytes_sent());
  }
  res.report = obs::summarize(*cluster.tracer());
  return res;
}

void expect_identical(const RunResult& oracle, const RunResult& probe,
                      const std::string& label) {
  ASSERT_EQ(oracle.losses.size(), probe.losses.size()) << label;
  for (std::size_t r = 0; r < oracle.losses.size(); ++r) {
    // Bitwise, not approximate: the scheduler must not change the fold order.
    EXPECT_EQ(std::memcmp(&oracle.losses[r], &probe.losses[r], sizeof(float)),
              0)
        << label << " loss differs on rank " << r;
    EXPECT_EQ(oracle.clocks[r], probe.clocks[r])
        << label << " clock differs on rank " << r;
    EXPECT_EQ(oracle.bytes[r], probe.bytes[r])
        << label << " bytes differ on rank " << r;
  }
  EXPECT_EQ(oracle.report.wall, probe.report.wall) << label;
  EXPECT_EQ(oracle.report.bubble_fraction, probe.report.bubble_fraction)
      << label;
  EXPECT_EQ(oracle.report.comm_overlap_fraction,
            probe.report.comm_overlap_fraction)
      << label;
  EXPECT_EQ(oracle.report.comm_bytes, probe.report.comm_bytes) << label;
  EXPECT_EQ(oracle.report.peak_mem, probe.report.peak_mem) << label;
  ASSERT_EQ(oracle.report.ranks.size(), probe.report.ranks.size()) << label;
  for (std::size_t r = 0; r < oracle.report.ranks.size(); ++r) {
    EXPECT_EQ(oracle.report.ranks[r].wall, probe.report.ranks[r].wall)
        << label << " rank " << r;
    EXPECT_EQ(oracle.report.ranks[r].busy, probe.report.ranks[r].busy)
        << label << " rank " << r;
    EXPECT_EQ(oracle.report.ranks[r].seconds, probe.report.ranks[r].seconds)
        << label << " rank " << r;
  }
}

}  // namespace

// ---- A/B matrix -------------------------------------------------------------

TEST(BackendAB, TasksMatchesThreadsBitwiseAcrossWorldsAndWorkers) {
  for (const int world : {4, 8, 16}) {
    const auto oracle = run_workload(world, sim::SimBackend::kThreads, 0);
    // Worker-count sweep: a single worker (pure cooperative interleaving),
    // a few, and auto must all produce the oracle's bits.
    for (const int workers : {1, 3, 0}) {
      const auto probe = run_workload(world, sim::SimBackend::kTasks, workers);
      expect_identical(oracle, probe,
                       "world " + std::to_string(world) + " workers " +
                           std::to_string(workers));
    }
  }
}

namespace {

/// Fail-stop scenario observations (shared by both backends).
struct FaultResult {
  int dead_rank = -1;
  std::vector<int> survivors_timed_out;
  std::vector<double> clocks;
};

FaultResult run_fail_stop(sim::SimBackend backend) {
  sim::Cluster cluster(sim::Topology::uniform(6, 100e9));
  cluster.set_backend(backend);
  sim::FaultPlan plan;
  plan.fail_stop_at(2, 0.35);
  plan.watchdog = 0.5;
  cluster.install_faults(plan);
  col::Backend be(cluster);
  auto& world = be.world();

  FaultResult res;
  std::array<bool, 6> timed_out{};
  try {
    cluster.run([&](int g) {
      std::vector<float> buf(256, 1.0f);
      for (;;) {
        cluster.device(g).advance_clock(0.2);
        try {
          world.all_reduce(g, buf);
        } catch (const sim::CommTimeoutError&) {
          timed_out[static_cast<std::size_t>(g)] = true;
          return;
        }
      }
    });
  } catch (const sim::DeviceFailure& e) {
    res.dead_rank = e.rank();
  }
  for (int g = 0; g < 6; ++g) {
    if (timed_out[static_cast<std::size_t>(g)]) {
      res.survivors_timed_out.push_back(g);
    }
    res.clocks.push_back(cluster.device(g).clock());
  }
  return res;
}

/// Transient-comm scenario: collectives inside the fault window back off and
/// retry; everything is symmetric, so both backends see the same delays.
RunResult run_transient(sim::SimBackend backend) {
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  cluster.set_backend(backend);
  sim::FaultPlan plan;
  plan.transient_comm(0.0, 0.4);  // retry_base 0.25: succeeds after backoff
  cluster.install_faults(plan);
  col::Backend be(cluster);
  auto& g = be.world();

  RunResult res;
  res.losses.assign(4, 0.0f);
  cluster.run([&](int r) {
    std::vector<float> buf(1024, 1.0f + static_cast<float>(r));
    for (int it = 0; it < 3; ++it) g.all_reduce(r, buf, 0.25f);
    float loss = 0.0f;
    for (float v : buf) loss += v;
    res.losses[static_cast<std::size_t>(r)] = loss;
  });
  for (int r = 0; r < 4; ++r) {
    res.clocks.push_back(cluster.device(r).clock());
    res.bytes.push_back(cluster.device(r).bytes_sent());
  }
  return res;
}

}  // namespace

TEST(BackendAB, FailStopFaultIdenticalAcrossBackends) {
  const auto oracle = run_fail_stop(sim::SimBackend::kThreads);
  const auto probe = run_fail_stop(sim::SimBackend::kTasks);
  ASSERT_EQ(oracle.dead_rank, 2);
  EXPECT_EQ(probe.dead_rank, oracle.dead_rank);
  EXPECT_EQ(probe.survivors_timed_out, oracle.survivors_timed_out);
  ASSERT_EQ(oracle.survivors_timed_out, (std::vector<int>{0, 1, 3, 4, 5}));
  for (std::size_t r = 0; r < oracle.clocks.size(); ++r) {
    EXPECT_EQ(oracle.clocks[r], probe.clocks[r]) << "rank " << r;
  }
}

TEST(BackendAB, TransientRetryFaultIdenticalAcrossBackends) {
  const auto oracle = run_transient(sim::SimBackend::kThreads);
  const auto probe = run_transient(sim::SimBackend::kTasks);
  for (std::size_t r = 0; r < oracle.losses.size(); ++r) {
    EXPECT_EQ(std::memcmp(&oracle.losses[r], &probe.losses[r], sizeof(float)),
              0)
        << "rank " << r;
    EXPECT_EQ(oracle.clocks[r], probe.clocks[r]) << "rank " << r;
    EXPECT_EQ(oracle.bytes[r], probe.bytes[r]) << "rank " << r;
  }
  // The transient window actually cost sim-time (the retries happened).
  EXPECT_GT(oracle.clocks[0], 0.25);
}

// ---- scale smoke ------------------------------------------------------------

TEST(BackendScale, Smoke1024RankAllReduceUnderWallCeiling) {
  // 1024 fiber ranks — 16x past where thread-per-rank stops being practical —
  // through a real data-moving all-reduce, against a generous wall ceiling
  // (the point is "completes in seconds, not minutes/never").
  constexpr int kWorld = 1024;
  sim::Cluster cluster(sim::Topology::uniform(kWorld, 100e9));
  cluster.set_backend(sim::SimBackend::kTasks);
  col::Backend be(cluster);
  auto& g = be.world();

  std::vector<float> sums(kWorld);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run([&](int r) {
    std::vector<float> buf(256, 1.0f + static_cast<float>(r % 7));
    g.all_reduce(r, buf, 1.0f / kWorld);
    sums[static_cast<std::size_t>(r)] = buf[0];
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Every rank holds the same mean; sim clock advanced; wall under ceiling.
  for (int r = 1; r < kWorld; ++r) {
    ASSERT_EQ(sums[static_cast<std::size_t>(r)], sums[0]) << "rank " << r;
  }
  EXPECT_GT(cluster.max_clock(), 0.0);
  EXPECT_LT(wall, 30.0) << "1024-rank all-reduce took " << wall << " s";
}

// ---- knobs ------------------------------------------------------------------

TEST(BackendKnobs, ParseAndName) {
  EXPECT_EQ(sim::parse_backend("threads"), sim::SimBackend::kThreads);
  EXPECT_EQ(sim::parse_backend("tasks"), sim::SimBackend::kTasks);
  EXPECT_EQ(sim::parse_backend("fibers"), std::nullopt);
  EXPECT_EQ(sim::parse_backend(""), std::nullopt);
  EXPECT_STREQ(sim::backend_name(sim::SimBackend::kThreads), "threads");
  EXPECT_STREQ(sim::backend_name(sim::SimBackend::kTasks), "tasks");
}

TEST(BackendKnobs, ClusterReadsEnvironment) {
  {
    ScopedEnv be("CA_SIM_BACKEND", "tasks");
    ScopedEnv wk("CA_SIM_WORKERS", "3");
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    EXPECT_EQ(cluster.backend(), sim::SimBackend::kTasks);
    EXPECT_EQ(cluster.workers(), 3);
  }
  {
    ScopedEnv be("CA_SIM_BACKEND", nullptr);
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    EXPECT_EQ(cluster.backend(), sim::SimBackend::kThreads);  // the default
  }
  {
    ScopedEnv be("CA_SIM_BACKEND", "green-threads");
    EXPECT_THROW(sim::Cluster cluster(sim::Topology::uniform(2, 100e9)),
                 std::invalid_argument);
  }
  {
    ScopedEnv wk("CA_SIM_WORKERS", "lots");
    EXPECT_THROW(sim::Cluster cluster(sim::Topology::uniform(2, 100e9)),
                 std::invalid_argument);
  }
}

TEST(BackendKnobs, ConfigKeysParsedAndEnvWins) {
  {
    ScopedEnv be("CA_SIM_BACKEND", nullptr);
    ScopedEnv wk("CA_SIM_WORKERS", nullptr);
    auto world = core::launch("data=2 sim.backend=tasks sim.workers=2");
    EXPECT_EQ(world->cluster().backend(), sim::SimBackend::kTasks);
    EXPECT_EQ(world->cluster().workers(), 2);
    // And the tasks backend actually runs the SPMD region.
    std::vector<int> seen(2, 0);
    world->run([&](ca::tp::Env env) { seen[env.grank] = 1; });
    EXPECT_EQ(seen, (std::vector<int>{1, 1}));
  }
  {
    // Environment beats the config field.
    ScopedEnv be("CA_SIM_BACKEND", "threads");
    auto world = core::launch("data=2 sim.backend=tasks");
    EXPECT_EQ(world->cluster().backend(), sim::SimBackend::kThreads);
  }
  EXPECT_THROW(core::launch("data=2 sim.backend=coroutines"),
               std::invalid_argument);
  EXPECT_THROW(core::launch("data=2 sim.workers=-1"), std::invalid_argument);
}
