// Online metrics subsystem tests: histogram bucket math, per-rank sinks and
// cross-rank merge, the hot-path emit points (engine, collectives, ZeRO,
// pipeline, fault retries), clock invariance of instrumentation, the
// calibration report, the straggler detector (catch AND no-false-alarm), the
// CA_METRICS* knobs with env-over-config precedence, and the exporters.
//
// Suites named MetricsScale* run 512 fiber ranks and are excluded from the
// TSan CI lanes (same convention as BackendScale).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "collective/backend.hpp"
#include "core/launch.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "engine/zero_engine.hpp"
#include "nn/layers.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "pp/pipeline.hpp"
#include "sim/cluster.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace pp = ca::pp;
namespace obs = ca::obs;
namespace data = ca::data;
namespace engine = ca::engine;

namespace {

struct World {
  explicit World(core::Config cfg, double bw = 100e9)
      : cluster(sim::Topology::uniform(cfg.world_size(), bw)),
        backend(cluster),
        ctx(backend, cfg) {}
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

/// Scoped environment variable (restores by unsetting on destruction).
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  const char* name_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

/// A Linear that also charges simulated device compute, so engine timing
/// metrics (and the straggler fault, which stretches compute) have something
/// to measure — plain nn layers do math on the host without advancing the
/// simulated clock.
class ChargedLinear : public nn::Module {
 public:
  ChargedLinear(const tp::Env& env, double flops, std::int64_t in,
                std::int64_t out, std::uint64_t seed)
      : env_(env), flops_(flops), lin_("m", in, out, seed) {}

  t::Tensor forward(const t::Tensor& x) override {
    env_.dev().compute_fp32(flops_, "fwd");
    return lin_.forward(x);
  }
  t::Tensor backward(const t::Tensor& dy) override {
    env_.dev().compute_fp32(flops_, "bwd");
    return lin_.backward(dy);
  }
  void collect_parameters(std::vector<nn::Parameter*>& out) override {
    lin_.collect_parameters(out);
  }

 private:
  tp::Env env_;
  double flops_;
  nn::Linear lin_;
};

/// The shared DP training loop of the engine-metric tests: `steps` Listing-1
/// iterations of a ChargedLinear on synthetic data.
void run_dp_training(World& w, int steps, double flops = 1e9) {
  data::SyntheticClassification ds(512, 6, 3, 41);
  const int dp = w.ctx.config().data_parallel_size;
  w.cluster.run([&](int g) {
    ChargedLinear model(w.env(g), flops, 6, 3, 42);
    auto eng = engine::initialize(
        w.env(g), model,
        std::make_unique<ca::optim::Sgd>(model.parameters(), 0.1f));
    data::DataLoader loader(ds, 8, g, dp);
    for (int s = 0; s < steps; ++s) {
      auto batch = loader.next(s);
      eng->zero_grad();
      auto out = eng->forward(batch.x);
      eng->criterion(out, batch.labels);
      eng->backward();
      eng->step();
    }
  });
}

}  // namespace

// ---- histogram bucket math --------------------------------------------------

TEST(MetricsHistogram, ExactMomentsAndLogBuckets) {
  obs::Histogram h;
  h.record(1.0);      // ilogb 0 -> bucket kHistExpOffset
  h.record(3.0);      // ilogb 1
  h.record(0.25e-9);  // ~2^-32
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0 + 0.25e-9);
  EXPECT_DOUBLE_EQ(h.min(), 0.25e-9);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_EQ(h.bucket_of(1.0), obs::kHistExpOffset);
  EXPECT_EQ(h.bucket_of(3.0), obs::kHistExpOffset + 1);
  // the bucket's upper edge is exclusive: 2.0 goes one bucket up from 1.0
  EXPECT_EQ(h.bucket_of(2.0), obs::kHistExpOffset + 1);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(obs::kHistExpOffset), 2.0);
}

TEST(MetricsHistogram, ClampsBothEndsAndNonPositive) {
  obs::Histogram h(8);  // tiny: indices clamp into [0, 7]
  h.record(0.0);
  h.record(-5.0);
  h.record(1e30);   // far above the top bucket
  h.record(1e-30);  // far below bucket 0
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.buckets()[0], 3);  // zero, negative, underflow
  EXPECT_EQ(h.buckets()[7], 1);  // overflow clamps into the last bucket
  EXPECT_DOUBLE_EQ(h.max(), 1e30);  // exact extrema survive the clamping
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(MetricsHistogram, MergeAlignsBucketsAndExtrema) {
  obs::Histogram a(16), b(16);
  a.record(1.0);
  b.record(4.0);
  b.record(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 5.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  // merging an empty histogram must not disturb extrema
  a.merge(obs::Histogram(16));
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  // wider source: overflow counts clamp into the last bucket, count exact
  obs::Histogram narrow(4), wide(64);
  wide.record(1.0);
  narrow.merge(wide);
  EXPECT_EQ(narrow.count(), 1);
  EXPECT_EQ(narrow.buckets()[3], 1);
}

TEST(MetricsSink, ClearZeroesInPlaceKeepingInstrumentAddresses) {
  obs::MetricsSink sink;
  obs::Counter& c = sink.counter("x");
  c.inc(5);
  sink.hist("h").record(1.0);
  sink.record_series("s", 0, 2.0);
  sink.observe_comm("g", "all_reduce", "ring", "f32", 64, 1.0, 1.0);
  sink.clear();
  EXPECT_EQ(sink.counter("x").value, 0);
  EXPECT_EQ(&sink.counter("x"), &c);  // node survived: cached refs stay valid
  EXPECT_EQ(sink.hist("h").count(), 0);
  EXPECT_TRUE(sink.series("s").points.empty());
  EXPECT_TRUE(sink.comm().empty());
}

TEST(MetricsRegistry, MergesCountersHistsAndCommAcrossRanks) {
  obs::MetricsRegistry reg(3, 32);
  for (int r = 0; r < 3; ++r) {
    reg.rank(r).counter("steps").inc(r + 1);
    reg.rank(r).hist("d").record(static_cast<double>(r + 1));
    reg.rank(r).observe_comm("world", "all_reduce", "ring", "f32", 1024,
                             0.5, 0.5);
  }
  const auto counters = reg.merged_counters();
  EXPECT_EQ(counters.at("steps"), 6);
  const auto hists = reg.merged_hists();
  EXPECT_EQ(hists.at("d").count(), 3);
  EXPECT_DOUBLE_EQ(hists.at("d").min(), 1.0);
  EXPECT_DOUBLE_EQ(hists.at("d").max(), 3.0);
  const auto comm = reg.merged_comm();
  ASSERT_EQ(comm.size(), 1u);
  EXPECT_EQ(comm.begin()->second.count, 3);
  EXPECT_DOUBLE_EQ(comm.begin()->second.sum_s, 1.5);
}

// ---- engine + collective emit points ----------------------------------------

TEST(MetricsEngine, PerStepCountersHistsAndSeries) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  auto& reg = w.cluster.enable_metrics();
  const int steps = 4;
  run_dp_training(w, steps);

  const auto counters = reg.merged_counters();
  EXPECT_EQ(counters.at("engine.steps"), 2 * steps);
  EXPECT_GE(counters.at("engine.bucket_flushes"), 2 * steps);
  EXPECT_GT(counters.at("comm.bytes"), 0);

  const auto hists = reg.merged_hists();
  EXPECT_EQ(hists.at("engine.step_s").count(), 2 * steps);
  EXPECT_EQ(hists.at("engine.grad_sync_s").count(), 2 * steps);
  EXPECT_EQ(hists.at("engine.optim_s").count(), 2 * steps);
  // compute is simulated (ChargedLinear), so fwd/bwd moments are positive
  EXPECT_GT(hists.at("engine.fwd_s").min(), 0.0);
  EXPECT_GT(hists.at("engine.bwd_s").min(), 0.0);

  for (int r = 0; r < 2; ++r) {
    const auto& series = reg.rank(r).all_series();
    ASSERT_EQ(series.count("engine.compute_s"), 1u);
    ASSERT_EQ(series.count("engine.sync_wait_s"), 1u);
    const auto& pts = series.at("engine.compute_s").points;
    ASSERT_EQ(pts.size(), static_cast<std::size_t>(steps));
    for (int s = 0; s < steps; ++s) {
      EXPECT_EQ(pts[static_cast<std::size_t>(s)].step, s);
      EXPECT_GT(pts[static_cast<std::size_t>(s)].value, 0.0);
    }
  }
}

TEST(MetricsComm, SettledCollectivesRecordMeasuredEqualPredictedWhenClean) {
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    std::vector<float> buf(1 << 12, 1.0f);
    backend.world().all_reduce(g, buf);
  });
  const auto comm = reg.merged_comm();
  ASSERT_EQ(comm.size(), 1u);
  const auto& [key, stat] = *comm.begin();
  EXPECT_EQ(key.group, "world");
  EXPECT_EQ(key.op, "all_reduce");
  EXPECT_EQ(key.dtype, "f32");
  EXPECT_EQ(key.bytes, (1 << 12) * 4);
  EXPECT_EQ(stat.count, 4);  // one observation per member rank
  // clean run: the span settles at exactly the cost-model prediction
  EXPECT_DOUBLE_EQ(stat.sum_s, stat.sum_pred_s);
  EXPECT_GT(stat.min_s, 0.0);
}

TEST(MetricsComm, LinkDegradeFaultSkewsMeasuredAbovePredicted) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  sim::FaultPlan plan;
  plan.degrade_links(0.0, 1e9, 8.0);
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    std::vector<float> buf(1 << 14, 1.0f);
    backend.world().all_reduce(g, buf);
  });
  const auto comm = reg.merged_comm();
  ASSERT_EQ(comm.size(), 1u);
  const auto& stat = comm.begin()->second;
  // the prediction stays the pure model; the measured time carries the fault
  EXPECT_GT(stat.sum_s, stat.sum_pred_s * 2.0);
}

TEST(MetricsClockInvariance, EnablingMetricsNeverChangesSimulatedTime) {
  auto wall = [](bool metrics_on) {
    core::Config cfg;
    cfg.data_parallel_size = 2;
    World w(cfg);
    if (metrics_on) w.cluster.enable_metrics();
    run_dp_training(w, 3);
    return w.cluster.max_clock();
  };
  const double off = wall(false);
  const double on = wall(true);
  EXPECT_EQ(off, on);  // bit-identical: observation must not perturb the sim
  EXPECT_GT(on, 0.0);
}

TEST(MetricsLifecycle, DisableDetachesAndResetStatsClearsValues) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  EXPECT_EQ(&cluster.enable_metrics(), &reg);  // idempotent
  cluster.run([&](int g) {
    std::vector<float> buf(256, 1.0f);
    backend.world().all_reduce(g, buf);
  });
  EXPECT_FALSE(reg.merged_comm().empty());
  cluster.reset_stats();
  EXPECT_TRUE(reg.merged_comm().empty());

  cluster.disable_metrics();
  EXPECT_EQ(cluster.device(0).metrics(), nullptr);
  cluster.run([&](int g) {
    std::vector<float> buf(256, 1.0f);
    backend.world().all_reduce(g, buf);
  });
  EXPECT_TRUE(reg.merged_comm().empty());  // detached: nothing recorded
}

// ---- ZeRO / pipeline / fault emit points ------------------------------------

TEST(MetricsZero, ShardTrafficCountersAndStepHist) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  auto& reg = w.cluster.enable_metrics();
  data::SyntheticClassification ds(256, 6, 3, 61);
  const int steps = 3;
  w.cluster.run([&](int g) {
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>("l", 6, 3, 62));
    engine::ZeroEngine eng(w.env(g), net, {}, /*stage=*/3);
    data::DataLoader loader(ds, 8, g, 2);
    for (int s = 0; s < steps; ++s) {
      auto batch = loader.next(s);
      eng.zero_grad();
      auto out = eng.forward(batch.x);
      eng.criterion(out, batch.labels);
      eng.backward();
      eng.step();
    }
  });
  const auto counters = reg.merged_counters();
  EXPECT_GT(counters.at("zero.reduce_bytes"), 0);
  EXPECT_GT(counters.at("zero.gather_bytes"), 0);  // stage 3 re-gathers params
  EXPECT_EQ(reg.merged_hists().at("zero.step_s").count(), 2 * steps);
}

TEST(MetricsPipeline, ExposedWaitPerMicroIsRecorded) {
  core::Config cfg;
  cfg.pipeline_parallel_size = 2;
  World w(cfg);
  auto& reg = w.cluster.enable_metrics();
  const int micros = 4;
  std::vector<t::Tensor> inputs;
  for (int m = 0; m < micros; ++m)
    inputs.push_back(t::randn(t::Shape{2, 4}, 300 + static_cast<std::uint64_t>(m)));
  const std::vector<std::int64_t> labels{0, 1};
  w.cluster.run([&](int g) {
    if (g == 0) {
      nn::Linear stage("s1", 4, 6, 11);
      pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4},
                        pp::Schedule::kOneFOneB);
      pipe.train_step(micros, inputs, {});
    } else {
      nn::Linear stage("s2", 6, 2, 12);
      pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6},
                        pp::Schedule::kOneFOneB);
      pipe.train_step(micros, {},
                      [&](const t::Tensor& y, t::Tensor& dy, int) {
                        t::Tensor dl;
                        const float loss = t::cross_entropy(y, labels, dl);
                        t::scale_(dl, 1.0f / static_cast<float>(micros));
                        dy = dl;
                        return loss;
                      });
    }
  });
  const auto hists = reg.merged_hists();
  // stage 1 waits on activations every micro; stage 0 waits on gradients
  ASSERT_EQ(hists.count("pp.fwd_wait_s"), 1u);
  EXPECT_EQ(hists.at("pp.fwd_wait_s").count(), micros);
  ASSERT_EQ(hists.count("pp.bwd_wait_s"), 1u);
  EXPECT_EQ(hists.at("pp.bwd_wait_s").count(), micros);

  // the executor publishes its bubble estimate as a per-rank gauge, which the
  // Prometheus exporter carries with a rank label
  for (int g = 0; g < 2; ++g) {
    const auto& gauges = reg.rank(g).gauges();
    ASSERT_EQ(gauges.count("pp.bubble_fraction"), 1u);
    const double b = gauges.at("pp.bubble_fraction").value;
    EXPECT_GE(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
  TempFile f("test_metrics_pp.prom");
  ASSERT_TRUE(obs::write_prometheus(reg, f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("ca_pp_bubble_fraction{rank=\"0\"}"), std::string::npos);
  EXPECT_NE(body.find("ca_pp_fwd_wait_s_count"), std::string::npos);
}

TEST(MetricsPipeline, EnablingMetricsNeverChangesPipelineClocks) {
  auto wall = [](bool metrics_on) {
    core::Config cfg;
    cfg.pipeline_parallel_size = 2;
    cfg.pp_schedule = "zero_bubble";
    World w(cfg);
    if (metrics_on) w.cluster.enable_metrics();
    const int micros = 4;
    std::vector<t::Tensor> inputs;
    for (int m = 0; m < micros; ++m)
      inputs.push_back(
          t::randn(t::Shape{2, 4}, 300 + static_cast<std::uint64_t>(m)));
    const std::vector<std::int64_t> labels{0, 1};
    w.cluster.run([&](int g) {
      if (g == 0) {
        nn::Linear stage("s1", 4, 6, 11);
        pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4});
        pipe.train_step(micros, inputs, {});
      } else {
        nn::Linear stage("s2", 6, 2, 12);
        pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6});
        pipe.train_step(micros, {},
                        [&](const t::Tensor& y, t::Tensor& dy, int) {
                          t::Tensor dl;
                          const float loss = t::cross_entropy(y, labels, dl);
                          t::scale_(dl, 1.0f / static_cast<float>(micros));
                          dy = dl;
                          return loss;
                        });
      }
    });
    return w.cluster.max_clock();
  };
  const double off = wall(false);
  const double on = wall(true);
  EXPECT_EQ(off, on);  // bit-identical: observation must not perturb the sim
  EXPECT_GT(on, 0.0);
}

TEST(MetricsFault, TransientCommRetriesAreCounted) {
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  sim::FaultPlan plan;
  plan.transient_comm(0.0, 0.4);  // retry_base 0.25: succeeds on attempt 3
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    std::vector<float> buf(256, 1.0f);
    backend.world().all_reduce(g, buf);
  });
  const auto counters = reg.merged_counters();
  EXPECT_GE(counters.at("fault.retries"), 2);  // two backoffs per rank
  const auto hists = reg.merged_hists();
  EXPECT_GE(hists.at("fault.retry_backoff_s").count(), 2);
  EXPECT_GE(hists.at("fault.retry_backoff_s").max(), 0.5);
}

TEST(MetricsFault, NanSkipsAreCounted) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  sim::FaultPlan plan;
  plan.corrupt_grads(1, 1);  // rank 1 poisons its gradient at step 1
  w.cluster.install_faults(plan);
  auto& reg = w.cluster.enable_metrics();
  run_dp_training(w, 3);
  // consensus skip: EVERY rank counts the skipped step
  EXPECT_EQ(reg.merged_counters().at("engine.nan_skips"), 2);
  EXPECT_EQ(reg.merged_counters().at("engine.steps"), 6);
}

// ---- calibration ------------------------------------------------------------

TEST(MetricsCalibration, CleanRunModelErrorIsZeroAndFitIsReported) {
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  col::Backend backend(cluster);
  backend.set_forced_algo(col::Algo::kRing);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    for (std::int64_t bytes = 256 << 10; bytes <= (8 << 20); bytes *= 2) {
      backend.world().account_all_reduce(g, bytes);
    }
  });
  const auto rows = obs::calibrate(reg);
  ASSERT_EQ(rows.size(), 1u);
  const auto& row = rows[0];
  EXPECT_EQ(row.group, "world");
  EXPECT_EQ(row.op, "all_reduce");
  EXPECT_EQ(row.algo, "ring");
  EXPECT_EQ(row.points, 6);
  EXPECT_EQ(row.min_bytes, 256 << 10);
  EXPECT_EQ(row.max_bytes, 8 << 20);
  // measured == predicted on a clean run, at every size
  EXPECT_DOUBLE_EQ(row.max_rel_err_model, 0.0);
  EXPECT_DOUBLE_EQ(row.max_rel_err_model_1mib, 0.0);
  // the fitted line has positive latency and inverse-bandwidth terms
  EXPECT_GT(row.beta_s_per_b, 0.0);
  EXPECT_GE(row.max_rel_err_fit, 0.0);
}

TEST(MetricsCalibration, LinkFaultSurfacesAsModelError) {
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  sim::FaultPlan plan;
  plan.degrade_links(0.0, 1e9, 4.0);
  cluster.install_faults(plan);
  col::Backend backend(cluster);
  backend.set_forced_algo(col::Algo::kChunked);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    backend.world().account_all_reduce(g, 4 << 20);
  });
  const auto rows = obs::calibrate(reg);
  ASSERT_EQ(rows.size(), 1u);
  // measured ~4x predicted => rel err ~3; well above any numeric noise
  EXPECT_GT(rows[0].max_rel_err_model_1mib, 1.0);
}

// ---- straggler detection ----------------------------------------------------

TEST(MetricsStraggler, SeededStragglerIsFlaggedOnEveryStep) {
  core::Config cfg;
  cfg.data_parallel_size = 4;
  World w(cfg);
  sim::FaultPlan plan;
  plan.straggler(/*rank=*/2, /*from=*/0.0, /*duration=*/1e9, /*factor=*/4.0);
  w.cluster.install_faults(plan);
  auto& reg = w.cluster.enable_metrics();
  const int steps = 4;
  run_dp_training(w, steps);

  const auto events = obs::detect_stragglers(reg, "engine.compute_s");
  ASSERT_EQ(events.size(), static_cast<std::size_t>(steps));
  for (const auto& e : events) {
    EXPECT_EQ(e.rank, 2);
    EXPECT_GT(e.z, 4.0);
    EXPECT_GT(e.value, e.peer_mean * 3.0);
  }
  // the flagged rank's peers absorb the skew as sync wait, not compute
  for (const auto& e : obs::detect_stragglers(reg, "engine.sync_wait_s")) {
    EXPECT_NE(e.rank, 2);
  }
}

TEST(MetricsStraggler, CleanRunRaisesNoAlarms) {
  core::Config cfg;
  cfg.data_parallel_size = 4;
  World w(cfg);
  auto& reg = w.cluster.enable_metrics();
  run_dp_training(w, 4);
  EXPECT_TRUE(obs::detect_stragglers(reg, "engine.compute_s").empty());
  EXPECT_TRUE(obs::detect_stragglers(reg, "engine.sync_wait_s").empty());
}

TEST(MetricsStraggler, NeedsThreePeersAndHonorsZThreshold) {
  obs::MetricsRegistry reg(2);
  reg.rank(0).record_series("s", 0, 1.0);
  reg.rank(1).record_series("s", 0, 100.0);
  // two ranks: no peer population to compare against => no verdict
  EXPECT_TRUE(obs::detect_stragglers(reg, "s").empty());

  obs::MetricsRegistry reg4(4);
  for (int r = 0; r < 4; ++r) {
    reg4.rank(r).record_series("s", 0, r == 3 ? 2.0 : 1.0);
  }
  // leave-one-out: peers are exactly 1.0, sd floors at 5% of the mean,
  // z = (2-1)/0.05 = 20
  auto events = obs::detect_stragglers(reg4, "s");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_NEAR(events[0].z, 20.0, 1e-6);
  // a laxer threshold config suppresses it
  obs::StragglerConfig lax;
  lax.z_threshold = 30.0;
  EXPECT_TRUE(obs::detect_stragglers(reg4, "s", lax).empty());
}

// ---- 512-rank scale (tasks backend; excluded from TSan lanes) ---------------

TEST(MetricsScale, CleanRun512RanksNoFalseAlarms) {
  sim::Cluster cluster(sim::Topology::uniform(512, 100e9));
  cluster.set_backend(sim::SimBackend::kTasks);
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  const int steps = 3;
  cluster.run([&](int g) {
    for (int s = 0; s < steps; ++s) {
      const double t0 = cluster.device(g).clock();
      cluster.device(g).compute_fp32(1e9, "work");
      cluster.device(g).metrics()->record_series(
          "engine.compute_s", s, cluster.device(g).clock() - t0);
      std::vector<float> buf(1024, 1.0f);
      backend.world().all_reduce(g, buf);
    }
  });
  EXPECT_TRUE(obs::detect_stragglers(reg, "engine.compute_s").empty());
  const auto comm = reg.merged_comm();
  ASSERT_EQ(comm.size(), 1u);
  EXPECT_EQ(comm.begin()->second.count, 512 * steps);
  EXPECT_EQ(reg.merged_counters().at("comm.bytes"),
            std::int64_t{512} * steps * 1024 * 4);
}

TEST(MetricsScale, SeededStragglerIsCaughtAt512Ranks) {
  sim::Cluster cluster(sim::Topology::uniform(512, 100e9));
  cluster.set_backend(sim::SimBackend::kTasks);
  sim::FaultPlan plan;
  plan.straggler(/*rank=*/137, 0.0, 1e9, /*factor=*/8.0);
  cluster.install_faults(plan);
  auto& reg = cluster.enable_metrics();
  const int steps = 3;
  cluster.run([&](int g) {
    for (int s = 0; s < steps; ++s) {
      const double t0 = cluster.device(g).clock();
      cluster.device(g).compute_fp32(1e9, "work");
      cluster.device(g).metrics()->record_series(
          "engine.compute_s", s, cluster.device(g).clock() - t0);
    }
  });
  const auto events = obs::detect_stragglers(reg, "engine.compute_s");
  ASSERT_EQ(events.size(), static_cast<std::size_t>(steps));
  for (const auto& e : events) EXPECT_EQ(e.rank, 137);
}

// ---- knobs: env > config, throw-on-garbage ----------------------------------

TEST(MetricsKnobs, EnvEnablesAndGarbageThrows) {
  {
    EnvGuard on("CA_METRICS", "on");
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    ASSERT_NE(cluster.metrics(), nullptr);
    EXPECT_NE(cluster.device(0).metrics(), nullptr);
  }
  {
    EnvGuard off("CA_METRICS", "off");
    sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
    EXPECT_EQ(cluster.metrics(), nullptr);
  }
  {
    EnvGuard bad("CA_METRICS", "yes");
    EXPECT_THROW(sim::Cluster(sim::Topology::uniform(2, 100e9)),
                 std::invalid_argument);
  }
}

TEST(MetricsKnobs, HistBucketsEnvParsesAndRejectsGarbage) {
  {
    EnvGuard on("CA_METRICS", "on");
    EnvGuard buckets("CA_METRICS_HIST_BUCKETS", "16");
    sim::Cluster cluster(sim::Topology::uniform(1, 100e9));
    ASSERT_NE(cluster.metrics(), nullptr);
    EXPECT_EQ(cluster.metrics()->hist_buckets(), 16);
    cluster.run([&](int g) { cluster.device(g).metrics()->hist("h").record(1.0); });
    EXPECT_EQ(cluster.metrics()->rank(0).hists().at("h").buckets().size(), 16u);
  }
  for (const char* bad : {"abc", "12abc", "0", "-3", "99999"}) {
    EnvGuard g("CA_METRICS_HIST_BUCKETS", bad);
    EXPECT_THROW(sim::Cluster(sim::Topology::uniform(1, 100e9)),
                 std::invalid_argument)
        << "value '" << bad << "' must be rejected";
  }
}

TEST(MetricsKnobs, EnvWinsOverConfig) {
  {
    // config says on, env says off: env wins
    EnvGuard off("CA_METRICS", "off");
    auto world = core::launch("data=2 metrics=on");
    EXPECT_EQ(world->cluster().metrics(), nullptr);
  }
  {
    // env silent: the config key lands
    auto world = core::launch("data=2 metrics=on metrics.hist_buckets=32");
    ASSERT_NE(world->cluster().metrics(), nullptr);
    EXPECT_EQ(world->cluster().metrics()->hist_buckets(), 32);
  }
  {
    // env bucket override beats the config's
    EnvGuard buckets("CA_METRICS_HIST_BUCKETS", "8");
    auto world = core::launch("data=2 metrics=on metrics.hist_buckets=32");
    ASSERT_NE(world->cluster().metrics(), nullptr);
    EXPECT_EQ(world->cluster().metrics()->hist_buckets(), 8);
  }
}

TEST(MetricsConfig, ParserAcceptsKeysAndValidateRejectsGarbage) {
  const auto cfg = core::parse_config("metrics=on metrics.hist_buckets=128");
  EXPECT_EQ(cfg.metrics, "on");
  EXPECT_EQ(cfg.metrics_hist_buckets, 128);
  EXPECT_EQ(core::parse_config("metrics.enabled=off").metrics, "off");
  EXPECT_THROW(core::parse_config("metrics=maybe"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("metrics.hist_buckets=abc"),
               std::invalid_argument);
  EXPECT_THROW(core::parse_config("metrics.hist_buckets=-1"),
               std::invalid_argument);
  EXPECT_THROW(core::parse_config("metrics.hist_buckets=9999"),
               std::invalid_argument);
}

// ---- exporters --------------------------------------------------------------

TEST(MetricsExporters, PrometheusDumpCarriesAllFamilies) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  auto& reg = w.cluster.enable_metrics();
  run_dp_training(w, 2);
  w.cluster.run([&](int g) {
    w.cluster.device(g).metrics()->gauge("lr").set(0.1);
  });

  TempFile f("test_metrics_out.prom");
  ASSERT_TRUE(obs::write_prometheus(reg, f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("ca_engine_steps_total 4"), std::string::npos);
  EXPECT_NE(body.find("ca_engine_step_s_bucket"), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(body.find("ca_engine_step_s_count 4"), std::string::npos);
  EXPECT_NE(body.find("ca_lr{rank=\"0\"}"), std::string::npos);
  EXPECT_NE(body.find("ca_comm_seconds_total{"), std::string::npos);
  EXPECT_NE(body.find("algo="), std::string::npos);
  EXPECT_NE(body.find("bytes_class="), std::string::npos);
}

TEST(MetricsExporters, CalibrationJsonRoundTrips) {
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  col::Backend backend(cluster);
  auto& reg = cluster.enable_metrics();
  cluster.run([&](int g) {
    for (std::int64_t bytes = 1 << 20; bytes <= (4 << 20); bytes *= 2) {
      backend.world().account_all_reduce(g, bytes);
    }
  });
  TempFile f("test_calibration_out.json");
  ASSERT_TRUE(obs::write_calibration_json(obs::calibrate(reg), "uniform4",
                                          f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("\"topology\": \"uniform4\""), std::string::npos);
  EXPECT_NE(body.find("\"alpha_s\""), std::string::npos);
  EXPECT_NE(body.find("\"beta_s_per_byte\""), std::string::npos);
  EXPECT_NE(body.find("\"max_rel_err_model\""), std::string::npos);
  EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
            std::count(body.begin(), body.end(), '}'));
}

TEST(MetricsExporters, ChromeTraceFoldsSeriesIntoCounterTracks) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  World w(cfg);
  w.cluster.enable_tracing();
  auto& reg = w.cluster.enable_metrics();
  run_dp_training(w, 2);

  TempFile f("test_metrics_trace_out.json");
  ASSERT_TRUE(obs::write_chrome_trace(*w.cluster.tracer(), &reg, f.path));
  const std::string body = slurp(f.path);
  EXPECT_NE(body.find("engine.compute_s"), std::string::npos);
  EXPECT_NE(body.find("engine.sync_wait_s"), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
            std::count(body.begin(), body.end(), '}'));

  // the nullptr-metrics overload stays byte-compatible with the old API
  TempFile f2("test_metrics_trace_out2.json");
  ASSERT_TRUE(obs::write_chrome_trace(*w.cluster.tracer(), f2.path));
  EXPECT_EQ(slurp(f2.path).find("engine.compute_s"), std::string::npos);
}
