// Sequence parallelism tests: ring exchange, Ring Self-Attention exactness
// against serial attention, the SP transformer block, the Figure 12 memory
// model, and the throughput simulation.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "sp/memory_model.hpp"
#include "sp/ring.hpp"
#include "sp/ring_attention.hpp"
#include "sp/sim_bert.hpp"
#include "tp/sim_transformer.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace sp = ca::sp;
namespace tp = ca::tp;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;

namespace {

struct SpWorld {
  explicit SpWorld(int n, sim::Topology topo)
      : cluster(std::move(topo)), backend(cluster), ctx(backend, config(n)) {
    // Serial-equivalence suite: pin the wire to fp32 (see DESIGN.md §10).
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }
  explicit SpWorld(int n) : SpWorld(n, sim::Topology::uniform(n, 100e9)) {}

  static core::Config config(int n) {
    core::Config cfg;
    cfg.sequence_parallel_size = n;
    return cfg;
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

}  // namespace

class RingPassP : public ::testing::TestWithParam<int> {};

TEST_P(RingPassP, RotatesBuffersOneStep) {
  const int p = GetParam();
  SpWorld w(p);
  std::vector<t::Tensor> got(static_cast<std::size_t>(p));
  w.cluster.run([&](int g) {
    t::Tensor mine(t::Shape{2}, static_cast<float>(g));
    auto ring = w.ctx.sequence_group(g).ranks();
    got[static_cast<std::size_t>(g)] =
        sp::ring_pass(w.backend, ring, g, mine);
  });
  for (int g = 0; g < p; ++g) {
    const float expect = static_cast<float>((g + p - 1) % p);
    EXPECT_EQ(got[static_cast<std::size_t>(g)][0], expect) << "rank " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(EvenAndOdd, RingPassP, ::testing::Values(2, 3, 4, 5));

TEST(RingAttention, MatchesSerialAttention) {
  const int p = 4;
  const std::int64_t b = 2, s = 8, h = 8, heads = 2;
  SpWorld w(p);

  nn::MultiHeadAttention serial("a", h, heads, 7);
  auto x = t::randn(t::Shape{b, s, h}, 8);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 9);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dqkv_w(p);
  w.cluster.run([&](int g) {
    sp::RingAttention attn(w.env(g), "a", h, heads, 7);
    auto x_local = t::chunk(x, 1, p, g);
    auto dy_local = t::chunk(dy, 1, p, g);
    y[g] = attn.forward(x_local);
    dx[g] = attn.backward(dy_local);
    dqkv_w[g] = attn.parameters()[0]->grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    EXPECT_TRUE(t::allclose(y[g], t::chunk(y_ref, 1, p, g), 1e-4f)) << g;
    EXPECT_TRUE(t::allclose(dx[g], t::chunk(dx_ref, 1, p, g), 1e-4f)) << g;
    // replicated weights: synced grads equal the serial full gradient
    EXPECT_TRUE(t::allclose(dqkv_w[g], serial.parameters()[0]->grad, 1e-3f)) << g;
  }
}

TEST(RingAttention, SingleRankDegeneratesToSerial) {
  SpWorld w(1);
  nn::MultiHeadAttention serial("a", 8, 2, 17);
  auto x = t::randn(t::Shape{1, 4, 8}, 18);
  auto y_ref = serial.forward(x);
  t::Tensor y;
  w.cluster.run([&](int g) {
    sp::RingAttention attn(w.env(g), "a", 8, 2, 17);
    y = attn.forward(x);
  });
  EXPECT_TRUE(t::allclose(y, y_ref, 1e-5f));
}

TEST(TransformerBlockSP, MatchesSerialBlock) {
  const int p = 2;
  const std::int64_t b = 1, s = 6, h = 8, heads = 2, f = 16;
  SpWorld w(p);

  nn::TransformerBlock serial("t", h, heads, f, 21);
  auto x = t::randn(t::Shape{b, s, h}, 22);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 23);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), mlp_w(p);
  w.cluster.run([&](int g) {
    sp::TransformerBlockSP blk(w.env(g), "t", h, heads, f, 21);
    y[g] = blk.forward(t::chunk(x, 1, p, g));
    dx[g] = blk.backward(t::chunk(dy, 1, p, g));
    // pick out the mlp fc1 weight grad (params: ln1(2), attn(4), ln2(2), mlp)
    mlp_w[g] = blk.parameters()[8]->grad.clone();
  });
  auto serial_mlp_w = serial.parameters()[8];
  for (int g = 0; g < p; ++g) {
    EXPECT_TRUE(t::allclose(y[g], t::chunk(y_ref, 1, p, g), 1e-3f)) << g;
    EXPECT_TRUE(t::allclose(dx[g], t::chunk(dx_ref, 1, p, g), 1e-3f)) << g;
    EXPECT_TRUE(t::allclose(mlp_w[g], serial_mlp_w->grad, 1e-3f)) << g;
  }
}

// ---- Figure 12: memory ------------------------------------------------------------

TEST(SpMemory, SequenceShardingBeats1dOnMaxBatch) {
  // BERT-Base, seq 512, A100-40GB (System III)
  sp::BertShape s;
  s.seq = 512;
  const std::int64_t cap = 40LL << 30;
  const auto b_sp4 = sp::max_batch(sp::bert_peak_sp, s, 4, cap);
  const auto b_1d4 = sp::max_batch(sp::bert_peak_1d, s, 4, cap);
  EXPECT_GT(static_cast<double>(b_sp4) / static_cast<double>(b_1d4), 1.8);
  // the paper's headline: 4.44x larger max batch at 12 GPUs
  const auto b_sp12 = sp::max_batch(sp::bert_peak_sp, s, 12, cap);
  const auto b_1d12 = sp::max_batch(sp::bert_peak_1d, s, 12, cap);
  EXPECT_GT(static_cast<double>(b_sp12) / static_cast<double>(b_1d12), 3.5);
}

TEST(SpMemory, SequenceShardingExtendsMaxSeq) {
  sp::BertShape s;
  s.batch = 64;
  const std::int64_t cap = 40LL << 30;
  const auto s_sp = sp::max_seq(sp::bert_peak_sp, s, 4, cap);
  const auto s_1d = sp::max_seq(sp::bert_peak_1d, s, 4, cap);
  EXPECT_GT(s_sp, s_1d);
}

TEST(SpMemory, MoreRanksMoreBatch) {
  sp::BertShape s;
  s.seq = 512;
  const std::int64_t cap = 40LL << 30;
  std::int64_t prev = 0;
  for (int p : {4, 8, 12}) {
    const auto b = sp::max_batch(sp::bert_peak_sp, s, p, cap);
    EXPECT_GT(b, prev) << p;
    prev = b;
  }
}

TEST(SpMemory, PeakGrowsLinearlyInBatch) {
  sp::BertShape s;
  s.seq = 512;
  s.batch = 32;
  const auto p32 = sp::bert_peak_sp(s, 4);
  s.batch = 64;
  const auto p64 = sp::bert_peak_sp(s, 4);
  s.batch = 128;
  const auto p128 = sp::bert_peak_sp(s, 4);
  EXPECT_EQ(p128 - p64, 2 * (p64 - p32));
}

// ---- Figure 13: throughput ---------------------------------------------------------

TEST(SimBertSP, StepAdvancesClockAndScalesWithLayers) {
  SpWorld w(4, sim::Topology::system_iii(1));
  sp::BertShape s;
  s.batch = 16;
  s.seq = 512;
  w.cluster.run([&](int g) {
    sp::SimBertSP model(w.env(g), s);
    model.train_step();
  });
  const double t12 = w.cluster.max_clock();
  EXPECT_GT(t12, 0.0);

  SpWorld w2(4, sim::Topology::system_iii(1));
  s.layers = 24;
  w2.cluster.run([&](int g) {
    sp::SimBertSP model(w2.env(g), s);
    model.train_step();
  });
  EXPECT_NEAR(w2.cluster.max_clock() / t12, 2.0, 0.2);
}

TEST(SimBertSP, FasterThan1dTensorParallelOnSystemIII) {
  // the headline Figure 13a effect at equal batch
  sp::BertShape s;
  s.batch = 32;
  s.seq = 512;

  SpWorld wsp(4, sim::Topology::system_iii(1));
  wsp.cluster.run([&](int g) {
    sp::SimBertSP model(wsp.env(g), s);
    model.train_step();
  });

  // 1D TP on the same 4 devices
  sim::Cluster c1d(sim::Topology::system_iii(1));
  col::Backend b1d(c1d);
  core::Config cfg;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k1d;
  core::ParallelContext ctx1d(b1d, cfg);
  tp::TransformerShape ts;
  ts.layers = s.layers;
  ts.hidden = s.hidden;
  ts.heads = s.heads;
  ts.batch = s.batch;
  ts.seq = s.seq;
  c1d.run([&](int g) {
    tp::SimTransformer model(tp::Env{&ctx1d, g}, core::TpMode::k1d, ts);
    model.train_step();
  });

  EXPECT_LT(wsp.cluster.max_clock(), c1d.max_clock());
}
