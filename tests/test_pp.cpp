// Pipeline parallelism tests: schedule correctness (both fill-drain and
// 1F1B reproduce serial gradients exactly), bubble model, memory behaviour,
// and deep pipelines.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "pp/pipeline.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace pp = ca::pp;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;

namespace {

struct PpWorld {
  explicit PpWorld(int stages)
      : cluster(sim::Topology::uniform(stages, 100e9)),
        backend(cluster),
        ctx(backend, config(stages)) {}

  static core::Config config(int stages) {
    core::Config cfg;
    cfg.pipeline_parallel_size = stages;
    return cfg;
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

/// Serial reference: the same two linear layers trained on the same
/// micro-batches with gradient accumulation and the same loss scaling.
struct SerialRef {
  nn::Linear l1{"s1", 4, 6, 11};
  nn::Linear l2{"s2", 6, 2, 12};
  std::vector<std::int64_t> labels{0, 1};

  float run(const std::vector<t::Tensor>& micros) {
    float loss_sum = 0.0f;
    for (const auto& x : micros) {
      auto y = l2.forward(l1.forward(x));
      t::Tensor dl;
      loss_sum += t::cross_entropy(y, labels, dl);
      t::scale_(dl, 1.0f / static_cast<float>(micros.size()));
      l1.backward(l2.backward(dl));
    }
    return loss_sum / static_cast<float>(micros.size());
  }
};

std::vector<t::Tensor> make_micros(int count) {
  std::vector<t::Tensor> micros;
  for (int m = 0; m < count; ++m)
    micros.push_back(t::randn(t::Shape{2, 4}, 100 + static_cast<std::uint64_t>(m)));
  return micros;
}

struct PipeResult {
  float loss = 0.0f;
  t::Tensor g1, g2;  // weight grads of the two stages
  int peak0 = 0, peak1 = 0;
};

PipeResult run_two_stage(pp::Schedule sched, int micros) {
  PpWorld w(2);
  auto inputs = make_micros(micros);
  PipeResult res;
  const std::vector<std::int64_t> labels{0, 1};
  w.cluster.run([&](int g) {
    if (g == 0) {
      nn::Linear stage("s1", 4, 6, 11);
      pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4}, sched);
      pipe.train_step(micros, inputs, {});
      res.g1 = stage.weight().grad.clone();
      res.peak0 = pipe.peak_in_flight();
    } else {
      nn::Linear stage("s2", 6, 2, 12);
      pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6}, sched);
      res.loss = pipe.train_step(
          micros, {},
          [&](const t::Tensor& y, t::Tensor& dy, int) {
            t::Tensor dl;
            const float loss = t::cross_entropy(y, labels, dl);
            t::scale_(dl, 1.0f / static_cast<float>(micros));
            dy = dl;
            return loss;
          });
      res.g2 = stage.weight().grad.clone();
      res.peak1 = pipe.peak_in_flight();
    }
  });
  return res;
}

}  // namespace

TEST(Bubble, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(pp::bubble_fraction(4, 4), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(pp::bubble_fraction(1, 8), 0.0);
  EXPECT_LT(pp::bubble_fraction(4, 64), pp::bubble_fraction(4, 8));
}

TEST(Pipeline, FillDrainMatchesSerial) {
  const int micros = 4;
  auto inputs = make_micros(micros);
  SerialRef ref;
  const float ref_loss = ref.run(inputs);

  auto res = run_two_stage(pp::Schedule::kFillDrain, micros);
  EXPECT_NEAR(res.loss, ref_loss, 1e-5f);
  EXPECT_TRUE(t::allclose(res.g1, ref.l1.weight().grad, 1e-4f));
  EXPECT_TRUE(t::allclose(res.g2, ref.l2.weight().grad, 1e-4f));
}

TEST(Pipeline, OneFOneBMatchesSerial) {
  const int micros = 4;
  auto inputs = make_micros(micros);
  SerialRef ref;
  const float ref_loss = ref.run(inputs);

  auto res = run_two_stage(pp::Schedule::kOneFOneB, micros);
  EXPECT_NEAR(res.loss, ref_loss, 1e-5f);
  EXPECT_TRUE(t::allclose(res.g1, ref.l1.weight().grad, 1e-4f));
  EXPECT_TRUE(t::allclose(res.g2, ref.l2.weight().grad, 1e-4f));
}

TEST(Pipeline, SchedulesProduceIdenticalGradients) {
  // accumulation order differs between schedules (fill-drain runs backward
  // in reverse), so equality holds up to float reassociation
  auto a = run_two_stage(pp::Schedule::kFillDrain, 6);
  auto b = run_two_stage(pp::Schedule::kOneFOneB, 6);
  EXPECT_TRUE(t::allclose(a.g1, b.g1, 1e-5f, 1e-7f));
  EXPECT_TRUE(t::allclose(a.g2, b.g2, 1e-5f, 1e-7f));
  EXPECT_NEAR(a.loss, b.loss, 1e-6f);
}

TEST(Pipeline, OneFOneBHoldsFewerMicrobatches) {
  const int micros = 6;
  auto gpipe = run_two_stage(pp::Schedule::kFillDrain, micros);
  auto f1b1 = run_two_stage(pp::Schedule::kOneFOneB, micros);
  // fill-drain parks every micro-batch on every stage
  EXPECT_EQ(gpipe.peak0, micros);
  EXPECT_EQ(gpipe.peak1, micros);
  // 1F1B keeps at most (stages - rank) in flight
  EXPECT_EQ(f1b1.peak0, 2);
  EXPECT_EQ(f1b1.peak1, 1);
}

TEST(Pipeline, FourStagesRunGreen) {
  const int stages = 4, micros = 8;
  PpWorld w(stages);
  auto inputs = make_micros(micros);
  const std::vector<std::int64_t> labels{0, 1};

  // serial reference: 4 chained linears 4->6->6->6->2
  nn::Linear r0("p0", 4, 6, 50), r1("p1", 6, 6, 51), r2("p2", 6, 6, 52),
      r3("p3", 6, 2, 53);
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    auto y = r3.forward(r2.forward(r1.forward(r0.forward(x))));
    t::Tensor dl;
    ref_loss += t::cross_entropy(y, labels, dl);
    t::scale_(dl, 1.0f / micros);
    r0.backward(r1.backward(r2.backward(r3.backward(dl))));
  }
  ref_loss /= micros;

  std::vector<t::Tensor> grads(stages);
  float loss = 0.0f;
  w.cluster.run([&](int g) {
    const std::int64_t in = g == 0 ? 4 : 6;
    const std::int64_t out = g == stages - 1 ? 2 : 6;
    nn::Linear stage("p" + std::to_string(g), in, out,
                     50 + static_cast<std::uint64_t>(g));
    pp::Pipeline pipe(w.env(g), stage, t::Shape{2, in}, pp::Schedule::kOneFOneB);
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs) : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    grads[g] = stage.weight().grad.clone();
    if (g == stages - 1) loss = l;
  });

  EXPECT_NEAR(loss, ref_loss, 1e-5f);
  EXPECT_TRUE(t::allclose(grads[0], r0.weight().grad, 1e-4f));
  EXPECT_TRUE(t::allclose(grads[3], r3.weight().grad, 1e-4f));
}

namespace {

/// A stage whose forward/backward charge fixed compute time on the device —
/// makes the pipeline bubble visible on the logical clocks.
class TimedStage : public nn::Module {
 public:
  TimedStage(const tp::Env& env, std::int64_t in, std::int64_t out,
             std::uint64_t seed, double seconds)
      : env_(env), lin_("stage", in, out, seed), seconds_(seconds) {}

  t::Tensor forward(const t::Tensor& x) override {
    env_.dev().advance_clock(seconds_);
    return lin_.forward(x);
  }
  t::Tensor backward(const t::Tensor& dy) override {
    env_.dev().advance_clock(2.0 * seconds_);
    return lin_.backward(dy);
  }
  void collect_parameters(std::vector<nn::Parameter*>& out) override {
    lin_.collect_parameters(out);
  }

 private:
  tp::Env env_;
  nn::Linear lin_;
  double seconds_;
};

}  // namespace

TEST(Pipeline, ClockShowsBubble) {
  // with one micro-batch, total time ~ sum of stage times; with many, the
  // steady state amortizes the fill/drain bubble.
  auto run_with = [&](int micros) {
    PpWorld w(2);
    auto inputs = make_micros(micros);
    const std::vector<std::int64_t> labels{0, 1};
    const double sec = 1.0;
    w.cluster.run([&](int g) {
      if (g == 0) {
        TimedStage stage(w.env(0), 4, 6, 11, sec);
        pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(micros, inputs, {});
      } else {
        TimedStage stage(w.env(1), 6, 2, 12, sec);
        pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(micros, {}, [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          dy = dl;
          return lv;
        });
      }
    });
    return w.cluster.max_clock() / micros;  // time per micro-batch
  };
  // more micro-batches => lower amortized time per micro-batch
  const double per_micro_8 = run_with(8);
  const double per_micro_1 = run_with(1);
  EXPECT_LT(per_micro_8, 0.8 * per_micro_1);
}

// ---- interleaved (chunked / virtual-stage) pipeline ----------------------------------

TEST(InterleavedBubble, ShrinksWithChunks) {
  EXPECT_DOUBLE_EQ(pp::bubble_fraction_interleaved(4, 8, 1),
                   pp::bubble_fraction(4, 8));
  EXPECT_LT(pp::bubble_fraction_interleaved(4, 8, 2),
            pp::bubble_fraction(4, 8));
  EXPECT_NEAR(pp::bubble_fraction_interleaved(8, 8, 7), 1.0 / 9.0, 1e-9);
}

TEST(ChunkedPipeline, VirtualStagesMatchSerialChain) {
  // 2 ranks x 2 chunks = 4 virtual stages: rank0 holds L0,L2; rank1 L1,L3.
  const int stages = 2, chunks = 2, micros = 3;
  PpWorld w(stages);
  const std::vector<std::int64_t> labels{0, 1};

  auto inputs = make_micros(micros);

  // serial: L0 -> L1 -> L2 -> L3
  nn::Linear r0("c0", 4, 6, 90), r1("c1", 6, 6, 91), r2("c2", 6, 6, 92),
      r3("c3", 6, 2, 93);
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    auto y = r3.forward(r2.forward(r1.forward(r0.forward(x))));
    t::Tensor dl;
    ref_loss += t::cross_entropy(y, labels, dl);
    t::scale_(dl, 1.0f / micros);
    r0.backward(r1.backward(r2.backward(r3.backward(dl))));
  }
  ref_loss /= micros;

  std::vector<t::Tensor> g0(2), g1(2);  // per-rank chunk grads
  float loss = 0.0f;
  w.cluster.run([&](int g) {
    // rank 0: virtual stages 0 and 2 (L0, L2); rank 1: 1 and 3 (L1, L3)
    nn::Linear a(g == 0 ? "c0" : "c1", g == 0 ? 4 : 6, 6,
                 90 + static_cast<std::uint64_t>(g));
    nn::Linear b(g == 0 ? "c2" : "c3", 6, g == 0 ? 6 : 2,
                 92 + static_cast<std::uint64_t>(g));
    pp::ChunkedPipeline pipe(w.env(g), {&a, &b},
                             {t::Shape{2, g == 0 ? 4 : 6}, t::Shape{2, 6}});
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs)
                       : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    g0[static_cast<std::size_t>(g)] = a.weight().grad.clone();
    g1[static_cast<std::size_t>(g)] = b.weight().grad.clone();
    if (g == 1) loss = l;
  });

  EXPECT_NEAR(loss, ref_loss, 1e-5f);
  EXPECT_TRUE(t::allclose(g0[0], r0.weight().grad, 1e-5f));  // L0 on rank 0
  EXPECT_TRUE(t::allclose(g0[1], r1.weight().grad, 1e-5f));  // L1 on rank 1
  EXPECT_TRUE(t::allclose(g1[0], r2.weight().grad, 1e-5f));  // L2 on rank 0
  EXPECT_TRUE(t::allclose(g1[1], r3.weight().grad, 1e-5f));  // L3 on rank 1
}

TEST(ChunkedPipeline, ThreeStagesTwoChunks) {
  const int stages = 3, micros = 4;
  PpWorld w(stages);
  auto inputs = make_micros(micros);
  const std::vector<std::int64_t> labels{0, 1};

  // 6 virtual stages, all 4->4 except the last 4->2
  std::vector<std::unique_ptr<nn::Linear>> serial;
  for (int v = 0; v < 6; ++v)
    serial.push_back(std::make_unique<nn::Linear>(
        "v" + std::to_string(v), v == 0 ? 4 : 4, v == 5 ? 2 : 4,
        200 + static_cast<std::uint64_t>(v)));
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    t::Tensor h = x;
    for (auto& l : serial) h = l->forward(h);
    t::Tensor dl;
    ref_loss += t::cross_entropy(h, labels, dl);
    t::scale_(dl, 1.0f / micros);
    t::Tensor gg = dl;
    for (auto it = serial.rbegin(); it != serial.rend(); ++it)
      gg = (*it)->backward(gg);
  }
  ref_loss /= micros;

  float loss = 0.0f;
  std::vector<t::Tensor> grads(6);
  w.cluster.run([&](int g) {
    // rank s holds virtual stages s and 3+s
    nn::Linear a("va", 4, 4, 200 + static_cast<std::uint64_t>(g));
    nn::Linear b("vb", 4, g == 2 ? 2 : 4, 203 + static_cast<std::uint64_t>(g));
    pp::ChunkedPipeline pipe(w.env(g), {&a, &b},
                             {t::Shape{2, 4}, t::Shape{2, 4}});
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs)
                       : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    grads[static_cast<std::size_t>(g)] = a.weight().grad.clone();
    grads[static_cast<std::size_t>(3 + g)] = b.weight().grad.clone();
    if (g == 2) loss = l;
  });
  EXPECT_NEAR(loss, ref_loss, 1e-5f);
  for (int v = 0; v < 6; ++v)
    EXPECT_TRUE(t::allclose(grads[static_cast<std::size_t>(v)],
                            serial[static_cast<std::size_t>(v)]->weight().grad,
                            1e-5f))
        << "virtual stage " << v;
}
