// Pipeline parallelism tests: the PipeSchedule compiler (task order, cache,
// zero-bubble wgrad deferral), the schedule x backend matrix pinning
// bit-identical losses/gradients against the serial oracle, knob parsing and
// precedence, bubble closed forms and the analytic per-schedule cost model,
// memory accounting across schedules, and the bf16 wire byte cut.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "collective/cost.hpp"
#include "nn/layers.hpp"
#include "pp/pipeline.hpp"
#include "pp/schedule.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace pp = ca::pp;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;

namespace {

/// Save/restore one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

struct PpWorld {
  explicit PpWorld(int stages, std::string pp_schedule = "1f1b")
      : cluster(sim::Topology::uniform(stages, 100e9)),
        backend(cluster),
        ctx(backend, config(stages, std::move(pp_schedule))) {
    // Serial-equivalence tests must stay exact under the CA_COMM_DTYPE=bf16
    // CI sweep; the byte-cut test overrides this pin explicitly.
    ctx.set_comm_dtype(t::Dtype::kF32);
  }

  static core::Config config(int stages, std::string pp_schedule) {
    core::Config cfg;
    cfg.pipeline_parallel_size = stages;
    cfg.pp_schedule = std::move(pp_schedule);
    return cfg;
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

/// Serial reference: the same two linear layers trained on the same
/// micro-batches with gradient accumulation and the same loss scaling.
struct SerialRef {
  nn::Linear l1{"s1", 4, 6, 11};
  nn::Linear l2{"s2", 6, 2, 12};
  std::vector<std::int64_t> labels{0, 1};

  float run(const std::vector<t::Tensor>& micros) {
    float loss_sum = 0.0f;
    for (const auto& x : micros) {
      auto y = l2.forward(l1.forward(x));
      t::Tensor dl;
      loss_sum += t::cross_entropy(y, labels, dl);
      t::scale_(dl, 1.0f / static_cast<float>(micros.size()));
      l1.backward(l2.backward(dl));
    }
    return loss_sum / static_cast<float>(micros.size());
  }
};

std::vector<t::Tensor> make_micros(int count) {
  std::vector<t::Tensor> micros;
  for (int m = 0; m < count; ++m)
    micros.push_back(t::randn(t::Shape{2, 4}, 100 + static_cast<std::uint64_t>(m)));
  return micros;
}

bool bits_equal(const t::Tensor& a, const t::Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

struct PipeResult {
  float loss = 0.0f;
  t::Tensor g1, g2;  // weight grads of the two stages
  int peak0 = 0, peak1 = 0;
  std::int64_t held0 = 0;
};

PipeResult run_two_stage(pp::Schedule sched, int micros) {
  PpWorld w(2);
  auto inputs = make_micros(micros);
  PipeResult res;
  const std::vector<std::int64_t> labels{0, 1};
  w.cluster.run([&](int g) {
    if (g == 0) {
      nn::Linear stage("s1", 4, 6, 11);
      pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4}, sched);
      pipe.train_step(micros, inputs, {});
      res.g1 = stage.weight().grad.clone();
      res.peak0 = pipe.peak_in_flight();
      res.held0 = pipe.peak_held_bytes();
    } else {
      nn::Linear stage("s2", 6, 2, 12);
      pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6}, sched);
      res.loss = pipe.train_step(
          micros, {},
          [&](const t::Tensor& y, t::Tensor& dy, int) {
            t::Tensor dl;
            const float loss = t::cross_entropy(y, labels, dl);
            t::scale_(dl, 1.0f / static_cast<float>(micros));
            dy = dl;
            return loss;
          });
      res.g2 = stage.weight().grad.clone();
      res.peak1 = pipe.peak_in_flight();
    }
  });
  return res;
}

}  // namespace

TEST(Bubble, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(pp::bubble_fraction(4, 4), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(pp::bubble_fraction(1, 8), 0.0);
  EXPECT_LT(pp::bubble_fraction(4, 64), pp::bubble_fraction(4, 8));
}

TEST(InterleavedBubble, ShrinksWithChunks) {
  EXPECT_DOUBLE_EQ(pp::bubble_fraction_interleaved(4, 8, 1),
                   pp::bubble_fraction(4, 8));
  EXPECT_LT(pp::bubble_fraction_interleaved(4, 8, 2),
            pp::bubble_fraction(4, 8));
  EXPECT_NEAR(pp::bubble_fraction_interleaved(8, 8, 7), 1.0 / 9.0, 1e-9);
}

TEST(Pipeline, FillDrainMatchesSerial) {
  const int micros = 4;
  auto inputs = make_micros(micros);
  SerialRef ref;
  const float ref_loss = ref.run(inputs);

  auto res = run_two_stage(pp::Schedule::kFillDrain, micros);
  EXPECT_EQ(res.loss, ref_loss);
  EXPECT_TRUE(bits_equal(res.g1, ref.l1.weight().grad));
  EXPECT_TRUE(bits_equal(res.g2, ref.l2.weight().grad));
}

TEST(Pipeline, OneFOneBMatchesSerial) {
  const int micros = 4;
  auto inputs = make_micros(micros);
  SerialRef ref;
  const float ref_loss = ref.run(inputs);

  auto res = run_two_stage(pp::Schedule::kOneFOneB, micros);
  EXPECT_EQ(res.loss, ref_loss);
  EXPECT_TRUE(bits_equal(res.g1, ref.l1.weight().grad));
  EXPECT_TRUE(bits_equal(res.g2, ref.l2.weight().grad));
}

TEST(Pipeline, SchedulesProduceIdenticalGradients) {
  // Every schedule accumulates micro-ascending per parameter (the compiler
  // asserts it), so gradients agree bit-for-bit, not just approximately.
  auto a = run_two_stage(pp::Schedule::kFillDrain, 6);
  auto b = run_two_stage(pp::Schedule::kOneFOneB, 6);
  auto z = run_two_stage(pp::Schedule::kZeroBubble, 6);
  EXPECT_TRUE(bits_equal(a.g1, b.g1));
  EXPECT_TRUE(bits_equal(a.g2, b.g2));
  EXPECT_TRUE(bits_equal(a.g1, z.g1));
  EXPECT_TRUE(bits_equal(a.g2, z.g2));
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.loss, z.loss);
}

TEST(Pipeline, OneFOneBHoldsFewerMicrobatches) {
  const int micros = 6;
  auto gpipe = run_two_stage(pp::Schedule::kFillDrain, micros);
  auto f1b1 = run_two_stage(pp::Schedule::kOneFOneB, micros);
  auto zb = run_two_stage(pp::Schedule::kZeroBubble, micros);
  // fill-drain parks every micro-batch on every stage
  EXPECT_EQ(gpipe.peak0, micros);
  EXPECT_EQ(gpipe.peak1, micros);
  // 1F1B keeps at most (stages - rank) in flight
  EXPECT_EQ(f1b1.peak0, 2);
  EXPECT_EQ(f1b1.peak1, 1);
  // zero-bubble runs uncapped and defers wgrad stashes: strictly more
  // resident state than 1F1B — the memory price of the empty drain
  EXPECT_GT(zb.peak0, f1b1.peak0);
  EXPECT_GT(zb.held0, f1b1.held0);
}

TEST(Pipeline, FourStagesRunGreen) {
  const int stages = 4, micros = 8;
  PpWorld w(stages);
  auto inputs = make_micros(micros);
  const std::vector<std::int64_t> labels{0, 1};

  // serial reference: 4 chained linears 4->6->6->6->2
  nn::Linear r0("p0", 4, 6, 50), r1("p1", 6, 6, 51), r2("p2", 6, 6, 52),
      r3("p3", 6, 2, 53);
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    auto y = r3.forward(r2.forward(r1.forward(r0.forward(x))));
    t::Tensor dl;
    ref_loss += t::cross_entropy(y, labels, dl);
    t::scale_(dl, 1.0f / micros);
    r0.backward(r1.backward(r2.backward(r3.backward(dl))));
  }
  ref_loss /= micros;

  std::vector<t::Tensor> grads(stages);
  float loss = 0.0f;
  w.cluster.run([&](int g) {
    const std::int64_t in = g == 0 ? 4 : 6;
    const std::int64_t out = g == stages - 1 ? 2 : 6;
    nn::Linear stage("p" + std::to_string(g), in, out,
                     50 + static_cast<std::uint64_t>(g));
    pp::Pipeline pipe(w.env(g), stage, t::Shape{2, in}, pp::Schedule::kOneFOneB);
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs) : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    grads[g] = stage.weight().grad.clone();
    if (g == stages - 1) loss = l;
  });

  EXPECT_EQ(loss, ref_loss);
  EXPECT_TRUE(bits_equal(grads[0], r0.weight().grad));
  EXPECT_TRUE(bits_equal(grads[3], r3.weight().grad));
}

namespace {

/// A stage whose forward/backward charge fixed compute time on the device —
/// makes the pipeline bubble visible on the logical clocks.
class TimedStage : public nn::Module {
 public:
  TimedStage(const tp::Env& env, std::int64_t in, std::int64_t out,
             std::uint64_t seed, double seconds)
      : env_(env), lin_("stage", in, out, seed), seconds_(seconds) {}

  t::Tensor forward(const t::Tensor& x) override {
    env_.dev().advance_clock(seconds_);
    return lin_.forward(x);
  }
  t::Tensor backward(const t::Tensor& dy) override {
    env_.dev().advance_clock(2.0 * seconds_);
    return lin_.backward(dy);
  }
  void collect_parameters(std::vector<nn::Parameter*>& out) override {
    lin_.collect_parameters(out);
  }

 private:
  tp::Env env_;
  nn::Linear lin_;
  double seconds_;
};

}  // namespace

TEST(Pipeline, ClockShowsBubble) {
  // with one micro-batch, total time ~ sum of stage times; with many, the
  // steady state amortizes the fill/drain bubble.
  auto run_with = [&](int micros) {
    PpWorld w(2);
    auto inputs = make_micros(micros);
    const std::vector<std::int64_t> labels{0, 1};
    const double sec = 1.0;
    w.cluster.run([&](int g) {
      if (g == 0) {
        TimedStage stage(w.env(0), 4, 6, 11, sec);
        pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(micros, inputs, {});
      } else {
        TimedStage stage(w.env(1), 6, 2, 12, sec);
        pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(micros, {}, [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          dy = dl;
          return lv;
        });
      }
    });
    return w.cluster.max_clock() / micros;  // time per micro-batch
  };
  // more micro-batches => lower amortized time per micro-batch
  const double per_micro_8 = run_with(8);
  const double per_micro_1 = run_with(1);
  EXPECT_LT(per_micro_8, 0.8 * per_micro_1);
}

// ---- PipeSchedule: compiler, matrix, knobs, cost model ---------------------------

namespace {

/// Virtual-stage chain oracle and pipeline runner for the schedule matrix.
/// VS = stages * chunks linears, all 4->4 except the last (4->2); virtual
/// stage vs = v * stages + s runs on rank s as its chunk v. Seeds depend on
/// vs only, so every decomposition trains the exact same model.
std::unique_ptr<nn::Linear> make_vs_layer(int vs, int total_vs) {
  return std::make_unique<nn::Linear>(
      "vs" + std::to_string(vs), 4, vs == total_vs - 1 ? 2 : 4,
      300 + static_cast<std::uint64_t>(vs));
}

struct MatrixResult {
  float loss = 0.0f;
  std::vector<t::Tensor> grads;  // per virtual stage, weight grads
};

MatrixResult serial_oracle(int total_vs, int micros) {
  const std::vector<std::int64_t> labels{0, 1};
  auto inputs = make_micros(micros);
  std::vector<std::unique_ptr<nn::Linear>> layers;
  for (int vs = 0; vs < total_vs; ++vs)
    layers.push_back(make_vs_layer(vs, total_vs));
  float loss_sum = 0.0f;
  for (const auto& x : inputs) {
    t::Tensor h = x;
    for (auto& l : layers) h = l->forward(h);
    t::Tensor dl;
    loss_sum += t::cross_entropy(h, labels, dl);
    t::scale_(dl, 1.0f / static_cast<float>(micros));
    t::Tensor g = dl;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
      g = (*it)->backward(g);
  }
  MatrixResult res;
  res.loss = loss_sum / static_cast<float>(micros);
  for (auto& l : layers) res.grads.push_back(l->weight().grad.clone());
  return res;
}

MatrixResult run_pipelined(pp::Schedule sched, int stages, int chunks,
                           int micros) {
  const int total_vs = stages * chunks;
  PpWorld w(stages);
  auto inputs = make_micros(micros);
  const std::vector<std::int64_t> labels{0, 1};
  MatrixResult res;
  res.grads.resize(static_cast<std::size_t>(total_vs));
  w.cluster.run([&](int g) {
    std::vector<std::unique_ptr<nn::Linear>> own;
    std::vector<nn::Module*> ptrs;
    std::vector<t::Shape> shapes;
    for (int v = 0; v < chunks; ++v) {
      own.push_back(make_vs_layer(v * stages + g, total_vs));
      ptrs.push_back(own.back().get());
      shapes.push_back(t::Shape{2, 4});
    }
    pp::Pipeline pipe(w.env(g), ptrs, shapes, sched);
    const float l = pipe.train_step(
        micros,
        g == 0 ? std::span<const t::Tensor>(inputs)
               : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / static_cast<float>(micros));
          dy = dl;
          return lv;
        });
    for (int v = 0; v < chunks; ++v)
      res.grads[static_cast<std::size_t>(v * stages + g)] =
          own[static_cast<std::size_t>(v)]->weight().grad.clone();
    if (g == stages - 1 && chunks > 0) res.loss = l;
  });
  return res;
}

void expect_matches_oracle(pp::Schedule sched, int stages, int chunks,
                           int micros) {
  SCOPED_TRACE(std::string(col::pipe_sched_name(sched)) + " S=" +
               std::to_string(stages) + " V=" + std::to_string(chunks) +
               " M=" + std::to_string(micros));
  const auto ref = serial_oracle(stages * chunks, micros);
  const auto got = run_pipelined(sched, stages, chunks, micros);
  EXPECT_EQ(got.loss, ref.loss);
  ASSERT_EQ(got.grads.size(), ref.grads.size());
  for (std::size_t vs = 0; vs < ref.grads.size(); ++vs)
    EXPECT_TRUE(bits_equal(got.grads[vs], ref.grads[vs]))
        << "virtual stage " << vs;
}

void run_schedule_matrix() {
  for (const int stages : {2, 4, 8}) {
    const int micros = stages + 3;  // never divisible by the stage count
    expect_matches_oracle(pp::Schedule::kFillDrain, stages, 1, micros);
    expect_matches_oracle(pp::Schedule::kOneFOneB, stages, 1, micros);
    expect_matches_oracle(pp::Schedule::kInterleaved, stages, 2, micros);
    expect_matches_oracle(pp::Schedule::kZeroBubble, stages, 1, micros);
  }
  // zero-bubble and fill-drain also support virtual stages
  expect_matches_oracle(pp::Schedule::kZeroBubble, 4, 2, 7);
  expect_matches_oracle(pp::Schedule::kFillDrain, 2, 2, 3);
}

}  // namespace

TEST(PipeSchedule, MatrixMatchesSerialOracleThreads) {
  ScopedEnv backend("CA_SIM_BACKEND", "threads");
  run_schedule_matrix();
}

TEST(PipeSchedule, MatrixMatchesSerialOracleTasks) {
  ScopedEnv backend("CA_SIM_BACKEND", "tasks");
  run_schedule_matrix();
}

TEST(PipeSchedule, SingleRankInterleavedMatchesSerial) {
  // S == 1 exercises the local (channel-free) delivery path for every
  // schedule, including multi-chunk wraps.
  expect_matches_oracle(pp::Schedule::kOneFOneB, 1, 1, 3);
  expect_matches_oracle(pp::Schedule::kInterleaved, 1, 3, 4);
  expect_matches_oracle(pp::Schedule::kZeroBubble, 1, 2, 3);
}

TEST(PipeSchedule, CompilesClassicOneFOneBOrder) {
  auto sp = pp::compile_schedule(pp::Schedule::kOneFOneB, 2, 4, 1);
  // rank 0 must reproduce the classic hand-rolled order:
  // F0 F1 B0 F2 B1 F3 B2 B3 (warmup = stages - rank - 1 = 1)
  std::string order;
  for (const auto& tk : sp->ranks[0].tasks) {
    if (tk.kind == pp::TaskKind::kFwd)
      order += "F" + std::to_string(tk.micro);
    if (tk.kind == pp::TaskKind::kBwdInput)
      order += "B" + std::to_string(tk.micro);
  }
  EXPECT_EQ(order, "F0F1B0F2B1F3B2B3");
  // compilation is cached per (schedule, stages, micros, chunks)
  EXPECT_EQ(sp.get(),
            pp::compile_schedule(pp::Schedule::kOneFOneB, 2, 4, 1).get());
  EXPECT_NE(sp.get(),
            pp::compile_schedule(pp::Schedule::kOneFOneB, 2, 5, 1).get());
}

TEST(PipeSchedule, ZeroBubbleDefersWgradIntoDrain) {
  const auto zb = pp::compile_schedule(pp::Schedule::kZeroBubble, 4, 8, 1);
  const auto f1b = pp::compile_schedule(pp::Schedule::kOneFOneB, 4, 8, 1);
  // every micro owes exactly one standalone wgrad task per rank, and on the
  // early ranks some of them land after the last dgrad — inside what would
  // otherwise be the drain bubble
  const auto& tasks = zb->ranks[0].tasks;
  int wgrads = 0;
  std::size_t last_dgrad = 0, last_wgrad = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].kind == pp::TaskKind::kBwdWeight) {
      ++wgrads;
      last_wgrad = i;
    }
    if (tasks[i].kind == pp::TaskKind::kBwdInput) last_dgrad = i;
  }
  EXPECT_EQ(wgrads, 8);
  EXPECT_GT(last_wgrad, last_dgrad);
  // deferred wgrad shortens the unit-cost makespan
  EXPECT_LT(zb->makespan, f1b->makespan);
  // both carry the same logical work per rank
  EXPECT_EQ(zb->stages, 4);
  EXPECT_EQ(zb->micros, 8);
}

TEST(PipeSchedule, KnobParsingAndPrecedence) {
  using S = pp::Schedule;
  EXPECT_EQ(pp::Pipeline::parse_schedule("fill_drain"), S::kFillDrain);
  EXPECT_EQ(pp::Pipeline::parse_schedule("gpipe"), S::kFillDrain);
  EXPECT_EQ(pp::Pipeline::parse_schedule("1f1b"), S::kOneFOneB);
  EXPECT_EQ(pp::Pipeline::parse_schedule("interleaved"), S::kInterleaved);
  EXPECT_EQ(pp::Pipeline::parse_schedule("zero_bubble"), S::kZeroBubble);
  EXPECT_EQ(pp::Pipeline::parse_schedule("zb"), S::kZeroBubble);
  EXPECT_THROW(pp::Pipeline::parse_schedule("bogus"), std::invalid_argument);
  EXPECT_THROW(pp::Pipeline::parse_schedule(""), std::invalid_argument);

  {  // config tier: pp.schedule decides when the env var is unset
    ScopedEnv env("CA_PP_SCHEDULE", nullptr);
    PpWorld w(2, "zero_bubble");
    EXPECT_EQ(pp::Pipeline::resolved_schedule(w.ctx), S::kZeroBubble);
  }
  {  // env tier wins over config
    ScopedEnv env("CA_PP_SCHEDULE", "fill_drain");
    PpWorld w(2, "zero_bubble");
    EXPECT_EQ(pp::Pipeline::resolved_schedule(w.ctx), S::kFillDrain);
  }
  {  // garbage env value throws instead of silently falling back
    ScopedEnv env("CA_PP_SCHEDULE", "garbage");
    PpWorld w(2);
    EXPECT_THROW(pp::Pipeline::resolved_schedule(w.ctx),
                 std::invalid_argument);
  }
  {  // garbage config value is rejected by Config::validate
    core::Config cfg;
    cfg.pp_schedule = "bogus";
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {  // the schedule-less Pipeline constructor resolves through the knob
    ScopedEnv env("CA_PP_SCHEDULE", "interleaved");
    PpWorld w(1);
    w.cluster.run([&](int g) {
      nn::Linear stage("k", 4, 2, 7);
      pp::Pipeline pipe(w.env(g), stage, t::Shape{2, 4});
      EXPECT_EQ(pipe.schedule(), S::kInterleaved);
    });
  }
}

TEST(PipeSchedule, AnalyticCostModelRanksSchedules) {
  col::PipeCostParams p;
  p.stages = 4;
  p.micros = 8;
  p.fwd_s = 1.0;
  p.bwd_input_s = 1.0;
  p.bwd_weight_s = 1.0;
  const auto fill = col::pipeline_schedule_cost(col::PipeSched::kFillDrain, p);
  const auto f1b = col::pipeline_schedule_cost(col::PipeSched::kOneFOneB, p);
  const auto zb = col::pipeline_schedule_cost(col::PipeSched::kZeroBubble, p);
  // fill-drain and 1F1B share the (S-1)/(M+S-1) bubble; they differ in peak
  // residency only
  EXPECT_DOUBLE_EQ(fill.bubble_fraction, f1b.bubble_fraction);
  EXPECT_GT(fill.peak_micros, f1b.peak_micros);
  // at M*V*w >= (S-1)*b the zero-bubble drain is fully filled by wgrads
  EXPECT_LT(zb.bubble_fraction, f1b.bubble_fraction);
  EXPECT_NEAR(zb.bubble_fraction,
              1.0 - zb.step_s / (zb.step_s), 1.0);  // sanity: finite
  EXPECT_GE(zb.peak_micros, f1b.peak_micros);

  // interleaving with V chunks (per-chunk costs shrink by 1/V) cuts the
  // fill/drain share
  col::PipeCostParams pi = p;
  pi.chunks = 2;
  pi.fwd_s = 0.5;
  pi.bwd_input_s = 0.5;
  pi.bwd_weight_s = 0.5;
  const auto il =
      col::pipeline_schedule_cost(col::PipeSched::kInterleaved, pi);
  EXPECT_LT(il.bubble_fraction, f1b.bubble_fraction);

  // compiled unit-cost makespans agree with the analytic ordering
  const int mk_f1b =
      pp::compile_schedule(pp::Schedule::kOneFOneB, 4, 8, 1)->makespan;
  const int mk_fill =
      pp::compile_schedule(pp::Schedule::kFillDrain, 4, 8, 1)->makespan;
  const int mk_zb =
      pp::compile_schedule(pp::Schedule::kZeroBubble, 4, 8, 1)->makespan;
  EXPECT_EQ(mk_f1b, mk_fill);
  EXPECT_LT(mk_zb, mk_f1b);
}

TEST(PipeSchedule, Bf16WireHalvesPipelineBytes) {
  auto bytes_with = [&](t::Dtype wire) {
    PpWorld w(2);
    w.ctx.set_comm_dtype(wire);
    auto inputs = make_micros(4);
    const std::vector<std::int64_t> labels{0, 1};
    w.cluster.run([&](int g) {
      if (g == 0) {
        nn::Linear stage("s1", 4, 6, 11);
        pp::Pipeline pipe(w.env(0), stage, t::Shape{2, 4},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(4, inputs, {});
      } else {
        nn::Linear stage("s2", 6, 2, 12);
        pp::Pipeline pipe(w.env(1), stage, t::Shape{2, 6},
                          pp::Schedule::kOneFOneB);
        pipe.train_step(4, {}, [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 0.25f);
          dy = dl;
          return lv;
        });
      }
    });
    return w.cluster.total_bytes_sent();
  };
  const auto full = bytes_with(t::Dtype::kF32);
  const auto half = bytes_with(t::Dtype::kBF16);
  ASSERT_GT(full, 0);
  // all traffic in this run is pipeline p2p, so the cut is exactly 2x
  EXPECT_EQ(half * 2, full);
}

// ---- interleaved (virtual-stage) pipelines against serial chains ------------------

TEST(Pipeline, VirtualStagesMatchSerialChain) {
  // 2 ranks x 2 chunks = 4 virtual stages: rank0 holds L0,L2; rank1 L1,L3.
  const int stages = 2, micros = 3;
  PpWorld w(stages);
  const std::vector<std::int64_t> labels{0, 1};

  auto inputs = make_micros(micros);

  // serial: L0 -> L1 -> L2 -> L3
  nn::Linear r0("c0", 4, 6, 90), r1("c1", 6, 6, 91), r2("c2", 6, 6, 92),
      r3("c3", 6, 2, 93);
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    auto y = r3.forward(r2.forward(r1.forward(r0.forward(x))));
    t::Tensor dl;
    ref_loss += t::cross_entropy(y, labels, dl);
    t::scale_(dl, 1.0f / micros);
    r0.backward(r1.backward(r2.backward(r3.backward(dl))));
  }
  ref_loss /= micros;

  std::vector<t::Tensor> g0(2), g1(2);  // per-rank chunk grads
  float loss = 0.0f;
  w.cluster.run([&](int g) {
    // rank 0: virtual stages 0 and 2 (L0, L2); rank 1: 1 and 3 (L1, L3)
    nn::Linear a(g == 0 ? "c0" : "c1", g == 0 ? 4 : 6, 6,
                 90 + static_cast<std::uint64_t>(g));
    nn::Linear b(g == 0 ? "c2" : "c3", 6, g == 0 ? 6 : 2,
                 92 + static_cast<std::uint64_t>(g));
    pp::Pipeline pipe(w.env(g), {&a, &b},
                      {t::Shape{2, g == 0 ? 4 : 6}, t::Shape{2, 6}},
                      pp::Schedule::kInterleaved);
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs)
                       : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    g0[static_cast<std::size_t>(g)] = a.weight().grad.clone();
    g1[static_cast<std::size_t>(g)] = b.weight().grad.clone();
    if (g == 1) loss = l;
  });

  EXPECT_EQ(loss, ref_loss);
  EXPECT_TRUE(bits_equal(g0[0], r0.weight().grad));  // L0 on rank 0
  EXPECT_TRUE(bits_equal(g0[1], r1.weight().grad));  // L1 on rank 1
  EXPECT_TRUE(bits_equal(g1[0], r2.weight().grad));  // L2 on rank 0
  EXPECT_TRUE(bits_equal(g1[1], r3.weight().grad));  // L3 on rank 1
}

TEST(Pipeline, ThreeStagesTwoChunks) {
  const int stages = 3, micros = 4;
  PpWorld w(stages);
  auto inputs = make_micros(micros);
  const std::vector<std::int64_t> labels{0, 1};

  // 6 virtual stages, all 4->4 except the last 4->2
  std::vector<std::unique_ptr<nn::Linear>> serial;
  for (int v = 0; v < 6; ++v)
    serial.push_back(std::make_unique<nn::Linear>(
        "v" + std::to_string(v), v == 0 ? 4 : 4, v == 5 ? 2 : 4,
        200 + static_cast<std::uint64_t>(v)));
  float ref_loss = 0.0f;
  for (const auto& x : inputs) {
    t::Tensor h = x;
    for (auto& l : serial) h = l->forward(h);
    t::Tensor dl;
    ref_loss += t::cross_entropy(h, labels, dl);
    t::scale_(dl, 1.0f / micros);
    t::Tensor gg = dl;
    for (auto it = serial.rbegin(); it != serial.rend(); ++it)
      gg = (*it)->backward(gg);
  }
  ref_loss /= micros;

  float loss = 0.0f;
  std::vector<t::Tensor> grads(6);
  w.cluster.run([&](int g) {
    // rank s holds virtual stages s and 3+s
    nn::Linear a("va", 4, 4, 200 + static_cast<std::uint64_t>(g));
    nn::Linear b("vb", 4, g == 2 ? 2 : 4, 203 + static_cast<std::uint64_t>(g));
    pp::Pipeline pipe(w.env(g), {&a, &b}, {t::Shape{2, 4}, t::Shape{2, 4}},
                      pp::Schedule::kInterleaved);
    const float l = pipe.train_step(
        micros, g == 0 ? std::span<const t::Tensor>(inputs)
                       : std::span<const t::Tensor>{},
        [&](const t::Tensor& y, t::Tensor& dy, int) {
          t::Tensor dl;
          const float lv = t::cross_entropy(y, labels, dl);
          t::scale_(dl, 1.0f / micros);
          dy = dl;
          return lv;
        });
    grads[static_cast<std::size_t>(g)] = a.weight().grad.clone();
    grads[static_cast<std::size_t>(3 + g)] = b.weight().grad.clone();
    if (g == 2) loss = l;
  });
  EXPECT_EQ(loss, ref_loss);
  for (int v = 0; v < 6; ++v)
    EXPECT_TRUE(bits_equal(grads[static_cast<std::size_t>(v)],
                           serial[static_cast<std::size_t>(v)]->weight().grad))
        << "virtual stage " << v;
}
