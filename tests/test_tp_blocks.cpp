// Exactness tests for the grid-mode (2D / 2.5D) Transformer blocks and the
// vocabulary-parallel embedding + cross-entropy.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "tp/block_grid.hpp"
#include "tp/vocab_parallel.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;

namespace {

struct World {
  World(core::TpMode mode, int size, int depth = 1)
      : cluster(sim::Topology::uniform(size, 100e9)),
        backend(cluster),
        ctx(backend, make(mode, size, depth)) {
    // Serial-equivalence suite: pin the wire to fp32 (see DESIGN.md §10).
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }
  static core::Config make(core::TpMode mode, int size, int depth) {
    core::Config cfg;
    cfg.tensor_parallel_size = size;
    cfg.tensor_mode = mode;
    cfg.tensor_depth = depth;
    return cfg;
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }
  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

}  // namespace

TEST(GridLayerNorm, MatchesSerialLayerNorm) {
  const int p = 4, q = 2;
  World w(core::TpMode::k2d, p);
  const std::int64_t b = 4, s = 3, h = 8;

  nn::LayerNorm serial("ln", h);
  auto gamma = t::uniform(t::Shape{h}, 3, 0.5f, 1.5f);
  auto beta = t::randn(t::Shape{h}, 4);
  serial.parameters()[0]->value = gamma;
  serial.parameters()[1]->value = beta;

  auto x = t::randn(t::Shape{b, s, h}, 5);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 6);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dg(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::GridLayerNorm ln(w.env(g), "ln", h);
    ln.parameters()[0]->value = t::chunk(gamma, 0, q, c);
    ln.parameters()[1]->value = t::chunk(beta, 0, q, c);
    y[g] = ln.forward(tp::shard_tokens(x, q, 1, 0, r, c));
    dx[g] = ln.backward(tp::shard_tokens(dy, q, 1, 0, r, c));
    dg[g] = ln.parameters()[0]->grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    EXPECT_TRUE(t::allclose(y[g], tp::shard_tokens(y_ref, q, 1, 0, r, c), 1e-4f))
        << g;
    EXPECT_TRUE(t::allclose(dx[g], tp::shard_tokens(dx_ref, q, 1, 0, r, c), 1e-4f))
        << g;
    // gamma grads: chunk c of the serial gradient (summed over all tokens)
    EXPECT_TRUE(t::allclose(dg[g], t::chunk(serial.parameters()[0]->grad, 0, q, c),
                            1e-3f))
        << g;
  }
}

TEST(GridAttention2D, MatchesSerialAttention) {
  const int p = 4, q = 2;
  const std::int64_t b = 4, s = 3, h = 8, heads = 2;
  World w(core::TpMode::k2d, p);

  nn::MultiHeadAttention serial("a", h, heads, 11);
  auto x = t::randn(t::Shape{b, s, h}, 12);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 13);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::Attention2D attn(w.env(g), "a", h, heads, 11);
    y[g] = attn.forward(tp::shard_tokens(x, q, 1, 0, r, c));
    dx[g] = attn.backward(tp::shard_tokens(dy, q, 1, 0, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    EXPECT_TRUE(t::allclose(y[g], tp::shard_tokens(y_ref, q, 1, 0, r, c), 1e-4f))
        << "rank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens(dx_ref, q, 1, 0, r, c), 1e-4f))
        << "rank " << g;
  }
}

TEST(GridBlock2D, MatchesSerialTransformerBlock) {
  const int p = 4, q = 2;
  const std::int64_t b = 4, s = 3, h = 8, heads = 2, f = 16;
  World w(core::TpMode::k2d, p);

  nn::TransformerBlock serial("t", h, heads, f, 21);
  auto x = t::randn(t::Shape{b, s, h}, 22);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 23);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    tp::TransformerBlock2D blk(w.env(g), "t", h, heads, f, 21);
    y[g] = blk.forward(tp::shard_tokens(x, q, 1, 0, r, c));
    dx[g] = blk.backward(tp::shard_tokens(dy, q, 1, 0, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int r = w.ctx.row_coord(g), c = w.ctx.col_coord(g);
    EXPECT_TRUE(t::allclose(y[g], tp::shard_tokens(y_ref, q, 1, 0, r, c), 1e-3f))
        << "rank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens(dx_ref, q, 1, 0, r, c), 1e-3f))
        << "rank " << g;
  }
}

TEST(GridBlock2p5D, MatchesSerialTransformerBlock) {
  const int p = 8, d = 2, q = 2;
  const std::int64_t b = 8, s = 3, h = 8, heads = 2, f = 16;
  World w(core::TpMode::k2p5d, p, d);

  nn::TransformerBlock serial("t", h, heads, f, 31);
  auto x = t::randn(t::Shape{b, s, h}, 32);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 33);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int dd = w.ctx.depth_coord(g), r = w.ctx.row_coord(g),
              c = w.ctx.col_coord(g);
    tp::TransformerBlock2p5D blk(w.env(g), "t", h, heads, f, 31);
    y[g] = blk.forward(tp::shard_tokens(x, q, d, dd, r, c));
    dx[g] = blk.backward(tp::shard_tokens(dy, q, d, dd, r, c));
  });
  for (int g = 0; g < p; ++g) {
    const int dd = g / (q * q), r = (g % (q * q)) / q, c = g % q;
    EXPECT_TRUE(
        t::allclose(y[g], tp::shard_tokens(y_ref, q, d, dd, r, c), 1e-3f))
        << "rank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens(dx_ref, q, d, dd, r, c), 1e-3f))
        << "rank " << g;
  }
}

// ---- vocabulary parallelism -----------------------------------------------------------

TEST(VocabParallel, EmbeddingMatchesSerial) {
  const int p = 4;
  World w(core::TpMode::k1d, p);
  const std::int64_t vocab = 16, h = 6;

  nn::Embedding serial("e", vocab, h, 41);
  std::vector<std::int64_t> ids{0, 5, 15, 5, 9};
  auto ref = serial.forward(ids);
  auto dy = t::randn(t::Shape{5, h}, 42);
  serial.backward(dy);

  std::vector<t::Tensor> out(p), grad(p);
  w.cluster.run([&](int g) {
    tp::VocabParallelEmbedding emb(w.env(g), "e", vocab, h, 41);
    out[g] = emb.forward(ids);
    emb.backward(dy);
    grad[g] = emb.table().grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    EXPECT_TRUE(t::allclose(out[g], ref, 1e-5f)) << g;
    EXPECT_TRUE(
        t::allclose(grad[g], t::chunk(serial.table().grad, 0, p, g), 1e-5f))
        << g;
  }
}

TEST(VocabParallel, CrossEntropyMatchesDenseCe) {
  const int p = 4;
  World w(core::TpMode::k1d, p);
  const std::int64_t rows = 6, vocab = 16;

  auto logits = t::randn(t::Shape{rows, vocab}, 51);
  std::vector<std::int64_t> targets{3, 0, 15, 7, 8, 12};
  t::Tensor dref;
  const float ref = t::cross_entropy(logits, targets, dref);

  std::vector<float> loss(p);
  std::vector<t::Tensor> dlocal(p);
  w.cluster.run([&](int g) {
    tp::VocabParallelCrossEntropy ce(w.env(g));
    auto local = t::chunk(logits, 1, p, g);
    loss[static_cast<std::size_t>(g)] =
        ce.forward_backward(local, targets, dlocal[static_cast<std::size_t>(g)]);
  });
  for (int g = 0; g < p; ++g) {
    EXPECT_NEAR(loss[static_cast<std::size_t>(g)], ref, 1e-5f) << g;
    EXPECT_TRUE(t::allclose(dlocal[static_cast<std::size_t>(g)],
                            t::chunk(dref, 1, p, g), 1e-5f))
        << g;
  }
}

TEST(VocabParallel, CrossEntropyStableForLargeLogits) {
  const int p = 2;
  World w(core::TpMode::k1d, p);
  t::Tensor logits(t::Shape{1, 8}, 1000.0f);
  logits[3] = 1001.0f;
  std::vector<std::int64_t> targets{3};

  std::vector<float> loss(p);
  w.cluster.run([&](int g) {
    tp::VocabParallelCrossEntropy ce(w.env(g));
    t::Tensor d;
    auto local = t::chunk(logits, 1, p, g);
    loss[static_cast<std::size_t>(g)] = ce.forward_backward(local, targets, d);
    for (float v : d.data()) EXPECT_FALSE(std::isnan(v));
  });
  EXPECT_FALSE(std::isnan(loss[0]));
  // target holds the max logit: p = e / (e + 7), loss = -ln p ~ 1.274,
  // well below the uniform ln(8) ~ 2.08
  EXPECT_NEAR(loss[0], 1.274f, 1e-2f);
}

TEST(VocabParallel, EmbeddingShardBoundaries) {
  const int p = 4;
  World w(core::TpMode::k1d, p);
  w.cluster.run([&](int g) {
    tp::VocabParallelEmbedding emb(w.env(g), "e", 16, 4, 61);
    EXPECT_EQ(emb.vocab_begin(), g * 4);
    EXPECT_EQ(emb.vocab_end(), (g + 1) * 4);
    EXPECT_EQ(emb.table().value.dim(0), 4);
  });
}

// ---- 3D transformer block -----------------------------------------------------------

#include "tp/block3d.hpp"

TEST(GridBlock3D, AttentionMatchesSerial) {
  const int p = 8, l = 2;
  const std::int64_t b = 4, s = 3, h = 8, heads = 2;
  World w(core::TpMode::k3d, p);

  nn::MultiHeadAttention serial("a", h, heads, 41);
  auto x = t::randn(t::Shape{b, s, h}, 42);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 43);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::Attention3D attn(w.env(g), "a", h, heads, 41);
    y[g] = attn.forward(tp::shard_tokens_3d(x, l, i, j, k));
    dx[g] = attn.backward(tp::shard_tokens_3d(dy, l, i, j, k));
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_TRUE(
        t::allclose(y[g], tp::shard_tokens_3d(y_ref, l, i, j, k), 1e-4f))
        << "rank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens_3d(dx_ref, l, i, j, k), 1e-4f))
        << "rank " << g;
  }
}

TEST(GridBlock3D, LayerNormMatchesSerial) {
  const int p = 8, l = 2;
  const std::int64_t b = 4, s = 3, h = 8;
  World w(core::TpMode::k3d, p);

  nn::LayerNorm serial("ln", h);
  auto gamma = t::uniform(t::Shape{h}, 51, 0.5f, 1.5f);
  serial.parameters()[0]->value = gamma;
  auto x = t::randn(t::Shape{b, s, h}, 52);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 53);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p), dg(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::LayerNorm3D ln(w.env(g), "ln", h);
    ln.parameters()[0]->value = t::chunk(gamma, 0, l * l, k * l + j);
    y[g] = ln.forward(tp::shard_tokens_3d(x, l, i, j, k));
    dx[g] = ln.backward(tp::shard_tokens_3d(dy, l, i, j, k));
    dg[g] = ln.parameters()[0]->grad.clone();
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_TRUE(
        t::allclose(y[g], tp::shard_tokens_3d(y_ref, l, i, j, k), 1e-4f)) << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens_3d(dx_ref, l, i, j, k), 1e-4f)) << g;
    EXPECT_TRUE(t::allclose(
        dg[g], t::chunk(serial.parameters()[0]->grad, 0, l * l, k * l + j),
        1e-3f))
        << g;
  }
}

TEST(GridBlock3D, FullBlockMatchesSerial) {
  const int p = 8, l = 2;
  const std::int64_t b = 4, s = 3, h = 8, heads = 2, f = 16;
  World w(core::TpMode::k3d, p);

  nn::TransformerBlock serial("t", h, heads, f, 61);
  auto x = t::randn(t::Shape{b, s, h}, 62);
  auto y_ref = serial.forward(x);
  auto dy = t::randn(t::Shape{b, s, h}, 63);
  auto dx_ref = serial.backward(dy);

  std::vector<t::Tensor> y(p), dx(p);
  w.cluster.run([&](int g) {
    const int i = w.ctx.cube_i(g), j = w.ctx.cube_j(g), k = w.ctx.cube_k(g);
    tp::TransformerBlock3D blk(w.env(g), "t", h, heads, f, 61);
    y[g] = blk.forward(tp::shard_tokens_3d(x, l, i, j, k));
    dx[g] = blk.backward(tp::shard_tokens_3d(dy, l, i, j, k));
  });
  for (int g = 0; g < p; ++g) {
    const int i = g / (l * l), j = (g / l) % l, k = g % l;
    EXPECT_TRUE(
        t::allclose(y[g], tp::shard_tokens_3d(y_ref, l, i, j, k), 1e-3f))
        << "rank " << g;
    EXPECT_TRUE(
        t::allclose(dx[g], tp::shard_tokens_3d(dx_ref, l, i, j, k), 1e-3f))
        << "rank " << g;
  }
}
