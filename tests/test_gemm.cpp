// Validation of the cache-blocked SIMD GEMM (tensor/gemm.hpp) against the
// naive triple-loop references it replaced on the hot path. The shapes are
// chosen adversarially for the tiling: primes, 1-extents, and dimensions just
// above/below the MR/NR/MC/KC/NC block boundaries, so every edge-padding path
// in the packing code is exercised.

#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace t = ca::tensor;

namespace {

// Blocked accumulation reorders the k-sum into KC-sized partials, so results
// differ from the naive reference by float rounding only.
constexpr float kRtol = 1e-4f;
constexpr float kAtol = 1e-4f;

struct Mnk {
  std::int64_t m, n, k;
};

// k=1 / n=1 / m=1 degenerate GEMVs, primes, and off-by-one tile edges
// (MR=4, NR=16, MC=128, KC=256, NC=1024).
const Mnk kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {7, 1, 13},   {1, 1, 300},  {17, 19, 23},
    {4, 16, 256}, {5, 17, 257}, {3, 15, 255}, {127, 31, 129}, {128, 16, 1},
    {129, 1031, 257}, {64, 64, 64}, {251, 67, 509},
};

t::Tensor rand_mat(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  return t::randn(t::Shape{r, c}, seed);
}

void expect_close(const t::Tensor& got, const t::Tensor& want, const Mnk& s,
                  const char* variant) {
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_TRUE(t::allclose(got, want, kRtol, kAtol))
      << variant << " m=" << s.m << " n=" << s.n << " k=" << s.k
      << " max_diff=" << t::max_diff(got, want);
}

// Drive the blocked kernel directly (below-cutoff shapes would otherwise be
// routed to the naive path by the matmul wrappers).
t::Tensor blocked_nn(const t::Tensor& a, const t::Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  t::Tensor out(t::Shape{m, n}, 0.0f);
  t::detail::gemm_blocked(m, n, k, a.data().data(), k, 1, b.data().data(), n, 1,
                          out.data().data(), true);
  return out;
}

t::Tensor blocked_tn(const t::Tensor& a, const t::Tensor& b) {
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  t::Tensor out(t::Shape{m, n}, 0.0f);
  t::detail::gemm_blocked(m, n, k, a.data().data(), 1, m, b.data().data(), n, 1,
                          out.data().data(), true);
  return out;
}

t::Tensor blocked_nt(const t::Tensor& a, const t::Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  t::Tensor out(t::Shape{m, n}, 0.0f);
  t::detail::gemm_blocked(m, n, k, a.data().data(), k, 1, b.data().data(), 1, k,
                          out.data().data(), true);
  return out;
}

}  // namespace

TEST(Gemm, BlockedMatchesNaiveNN) {
  for (const auto& s : kShapes) {
    auto a = rand_mat(s.m, s.k, 1000 + s.m);
    auto b = rand_mat(s.k, s.n, 2000 + s.n);
    expect_close(blocked_nn(a, b), t::naive_matmul(a, b), s, "NN");
  }
}

TEST(Gemm, BlockedMatchesNaiveTN) {
  for (const auto& s : kShapes) {
    auto a = rand_mat(s.k, s.m, 3000 + s.m);
    auto b = rand_mat(s.k, s.n, 4000 + s.n);
    expect_close(blocked_tn(a, b), t::naive_matmul_tn(a, b), s, "TN");
  }
}

TEST(Gemm, BlockedMatchesNaiveNT) {
  for (const auto& s : kShapes) {
    auto a = rand_mat(s.m, s.k, 5000 + s.m);
    auto b = rand_mat(s.n, s.k, 6000 + s.n);
    expect_close(blocked_nt(a, b), t::naive_matmul_nt(a, b), s, "NT");
  }
}

TEST(Gemm, PublicMatmulRoutesLargeShapesCorrectly) {
  // Above the cutoff the public entry points use the blocked kernel; check
  // them end to end against the references, including a 3-d batched lhs.
  auto a = rand_mat(130, 260, 11);
  auto b = rand_mat(260, 70, 12);
  Mnk s{130, 70, 260};
  expect_close(t::matmul(a, b), t::naive_matmul(a, b), s, "public NN");
  expect_close(t::matmul_nt(a, t::transpose2d(b)),
               t::naive_matmul(a, b), s, "public NT");
  expect_close(t::matmul_tn(t::transpose2d(a), b),
               t::naive_matmul(a, b), s, "public TN");

  auto a3 = t::randn(t::Shape{3, 65, 140}, 13);
  auto b3 = t::randn(t::Shape{3, 140, 129}, 14);
  auto got = t::bmm(a3, b3);
  for (std::int64_t bt = 0; bt < 3; ++bt) {
    auto ga = t::chunk(a3, 0, 3, bt).reshape(t::Shape{65, 140});
    auto gb = t::chunk(b3, 0, 3, bt).reshape(t::Shape{140, 129});
    auto want = t::naive_matmul(ga, gb);
    auto slice = t::chunk(got, 0, 3, bt).reshape(t::Shape{65, 129});
    EXPECT_TRUE(t::allclose(slice, want, kRtol, kAtol))
        << "bmm batch " << bt << " max_diff=" << t::max_diff(slice, want);
  }
}

TEST(Gemm, AccumulatesIntoExistingC) {
  // The kernel contract is C += A*B; verify it does not clobber prior C.
  auto a = rand_mat(9, 33, 21);
  auto b = rand_mat(33, 18, 22);
  t::Tensor c = t::full(t::Shape{9, 18}, 2.0f);
  t::detail::gemm_blocked(9, 18, 33, a.data().data(), 33, 1, b.data().data(),
                          18, 1, c.data().data(), false);
  auto want = t::add_scalar(t::naive_matmul(a, b), 2.0f);
  EXPECT_TRUE(t::allclose(c, want, kRtol, kAtol));
}
