// Tests for the parallel context manager: config validation, rank
// decomposition, and process-group construction for every parallel mode.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/context.hpp"

namespace core = ca::core;
namespace col = ca::collective;
namespace sim = ca::sim;

namespace {

struct World {
  explicit World(int n)
      : cluster(sim::Topology::uniform(n, 100e9)), backend(cluster) {}
  sim::Cluster cluster;
  col::Backend backend;
};

}  // namespace

TEST(Config, WorldSizeIsProductOfDims) {
  core::Config cfg;
  cfg.data_parallel_size = 2;
  cfg.pipeline_parallel_size = 3;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k1d;
  EXPECT_EQ(cfg.world_size(), 24);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, RejectsNonSquare2d) {
  core::Config cfg;
  cfg.tensor_parallel_size = 6;
  cfg.tensor_mode = core::TpMode::k2d;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.tensor_parallel_size = 9;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, Rejects2p5dWithBadDepth) {
  core::Config cfg;
  cfg.tensor_mode = core::TpMode::k2p5d;
  cfg.tensor_parallel_size = 8;
  cfg.tensor_depth = 2;  // 8 = 2 * 2^2 OK
  EXPECT_NO_THROW(cfg.validate());
  cfg.tensor_depth = 3;  // 8/3 not integral
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, RejectsNonCube3d) {
  core::Config cfg;
  cfg.tensor_mode = core::TpMode::k3d;
  cfg.tensor_parallel_size = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.tensor_parallel_size = 27;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, RejectsTensorPlusSequence) {
  core::Config cfg;
  cfg.tensor_parallel_size = 2;
  cfg.tensor_mode = core::TpMode::k1d;
  cfg.sequence_parallel_size = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, RejectsTensorSizeWithoutMode) {
  core::Config cfg;
  cfg.tensor_parallel_size = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Context, RejectsMismatchedWorldSize) {
  World w(4);
  core::Config cfg;  // world 1 != 4
  EXPECT_THROW(core::ParallelContext(w.backend, cfg), std::invalid_argument);
}

TEST(Context, RankDecompositionDataPipeTensor) {
  World w(8);
  core::Config cfg;
  cfg.data_parallel_size = 2;
  cfg.pipeline_parallel_size = 2;
  cfg.tensor_parallel_size = 2;
  cfg.tensor_mode = core::TpMode::k1d;
  core::ParallelContext ctx(w.backend, cfg);

  // grank = (d * 2 + p) * 2 + t
  EXPECT_EQ(ctx.data_rank(0), 0);
  EXPECT_EQ(ctx.data_rank(7), 1);
  EXPECT_EQ(ctx.pipeline_rank(2), 1);
  EXPECT_EQ(ctx.pipeline_rank(5), 0);
  EXPECT_EQ(ctx.tensor_rank(5), 1);

  // tensor groups are consecutive pairs
  EXPECT_EQ(ctx.tensor_group(0).ranks(), (std::vector<int>{0, 1}));
  EXPECT_EQ(ctx.tensor_group(6).ranks(), (std::vector<int>{6, 7}));
  // data group of rank 1: same (pipe=0, t=1) in both replicas -> {1, 5}
  EXPECT_EQ(ctx.data_group(1).ranks(), (std::vector<int>{1, 5}));
}

TEST(Context, PipelineNeighbors) {
  World w(4);
  core::Config cfg;
  cfg.pipeline_parallel_size = 4;
  core::ParallelContext ctx(w.backend, cfg);
  EXPECT_EQ(ctx.pipeline_prev(0), -1);
  EXPECT_TRUE(ctx.is_first_stage(0));
  EXPECT_EQ(ctx.pipeline_next(0), 1);
  EXPECT_EQ(ctx.pipeline_prev(3), 2);
  EXPECT_EQ(ctx.pipeline_next(3), -1);
  EXPECT_TRUE(ctx.is_last_stage(3));
}

TEST(Context, Grid2dGroups) {
  World w(4);
  core::Config cfg;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k2d;
  core::ParallelContext ctx(w.backend, cfg);

  EXPECT_EQ(ctx.grid_side(), 2);
  // layout: t = r*2 + c
  EXPECT_EQ(ctx.row_coord(0), 0);
  EXPECT_EQ(ctx.col_coord(1), 1);
  EXPECT_EQ(ctx.row_coord(2), 1);
  EXPECT_EQ(ctx.row_group(0).ranks(), (std::vector<int>{0, 1}));
  EXPECT_EQ(ctx.row_group(3).ranks(), (std::vector<int>{2, 3}));
  EXPECT_EQ(ctx.col_group(0).ranks(), (std::vector<int>{0, 2}));
  EXPECT_EQ(ctx.col_group(3).ranks(), (std::vector<int>{1, 3}));
  // no depth group in 2D
  EXPECT_THROW(ctx.depth_group(0), std::logic_error);
}

TEST(Context, Grid2p5dGroups) {
  World w(8);
  core::Config cfg;
  cfg.tensor_parallel_size = 8;
  cfg.tensor_mode = core::TpMode::k2p5d;
  cfg.tensor_depth = 2;
  core::ParallelContext ctx(w.backend, cfg);

  EXPECT_EQ(ctx.grid_side(), 2);
  EXPECT_EQ(ctx.depth(), 2);
  EXPECT_EQ(ctx.depth_coord(0), 0);
  EXPECT_EQ(ctx.depth_coord(5), 1);
  // depth layers: {0..3} and {4..7}; rows within each layer
  EXPECT_EQ(ctx.row_group(5).ranks(), (std::vector<int>{4, 5}));
  EXPECT_EQ(ctx.col_group(6).ranks(), (std::vector<int>{4, 6}));
  // depth group joins the same grid cell across layers
  EXPECT_EQ(ctx.depth_group(1).ranks(), (std::vector<int>{1, 5}));
  EXPECT_EQ(ctx.depth_group(7).ranks(), (std::vector<int>{3, 7}));
}

TEST(Context, Cube3dGroups) {
  World w(8);
  core::Config cfg;
  cfg.tensor_parallel_size = 8;
  cfg.tensor_mode = core::TpMode::k3d;
  core::ParallelContext ctx(w.backend, cfg);

  EXPECT_EQ(ctx.grid_side(), 2);
  // t = (i*2 + j)*2 + k; rank 5 = (1,0,1)
  EXPECT_EQ(ctx.cube_i(5), 1);
  EXPECT_EQ(ctx.cube_j(5), 0);
  EXPECT_EQ(ctx.cube_k(5), 1);
  // i-group of rank 5: vary i with j=0,k=1 -> {1, 5}
  EXPECT_EQ(ctx.cube_i_group(5).ranks(), (std::vector<int>{1, 5}));
  // j-group: vary j with i=1,k=1 -> {5, 7}
  EXPECT_EQ(ctx.cube_j_group(5).ranks(), (std::vector<int>{5, 7}));
  // k-group: vary k with i=1,j=0 -> {4, 5}
  EXPECT_EQ(ctx.cube_k_group(5).ranks(), (std::vector<int>{4, 5}));
}

TEST(Context, SequenceGroupAliasesTensorSlot) {
  World w(4);
  core::Config cfg;
  cfg.sequence_parallel_size = 4;
  core::ParallelContext ctx(w.backend, cfg);
  EXPECT_EQ(ctx.sequence_group(0).ranks(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ctx.tensor_rank(3), 3);
}

TEST(Context, HybridTensorDataGroupsUnderMultiReplica) {
  // 2 data replicas x 2D tensor parallelism over 4 => world 8
  World w(8);
  core::Config cfg;
  cfg.data_parallel_size = 2;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k2d;
  core::ParallelContext ctx(w.backend, cfg);

  EXPECT_EQ(ctx.tensor_group(5).ranks(), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(ctx.data_group(5).ranks(), (std::vector<int>{1, 5}));
  // grid sub-groups live inside the second tensor group too
  EXPECT_EQ(ctx.row_group(5).ranks(), (std::vector<int>{4, 5}));
  EXPECT_EQ(ctx.col_group(5).ranks(), (std::vector<int>{5, 7}));
}

// ---- Listing-1 textual configuration -------------------------------------------------

#include "core/config_parser.hpp"

TEST(ConfigParser, ParsesFullSchema) {
  auto cfg = core::parse_config(
      "data=2 pipeline=2 tensor.size=8 tensor.mode=2.5d tensor.depth=2");
  EXPECT_EQ(cfg.data_parallel_size, 2);
  EXPECT_EQ(cfg.pipeline_parallel_size, 2);
  EXPECT_EQ(cfg.tensor_parallel_size, 8);
  EXPECT_EQ(cfg.tensor_mode, core::TpMode::k2p5d);
  EXPECT_EQ(cfg.tensor_depth, 2);
  EXPECT_EQ(cfg.world_size(), 32);
}

TEST(ConfigParser, AcceptsParallelPrefixAndDefaults) {
  auto cfg = core::parse_config("parallel.tensor.size=4");
  EXPECT_EQ(cfg.tensor_mode, core::TpMode::k1d);  // default mode
  EXPECT_EQ(cfg.world_size(), 4);
  auto empty = core::parse_config("");
  EXPECT_EQ(empty.world_size(), 1);
}

TEST(ConfigParser, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(core::parse_config("bogus=1"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("data=two"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("tensor.mode=4d"), std::invalid_argument);
  EXPECT_THROW(core::parse_config("data 2"), std::invalid_argument);
  // validation runs too: 2D with non-square size
  EXPECT_THROW(core::parse_config("tensor.size=6 tensor.mode=2d"),
               std::invalid_argument);
}

// ---- launch() convenience ------------------------------------------------------------

#include "core/launch.hpp"

TEST(Launch, ConfigToSpmdInTwoLines) {
  auto world = core::launch("tensor.size=4 tensor.mode=2d");
  EXPECT_EQ(world->world_size(), 4);
  std::vector<int> rows(4, -1);
  world->run([&](ca::tp::Env env) {
    rows[static_cast<std::size_t>(env.grank)] =
        env.ctx->row_coord(env.grank);
  });
  EXPECT_EQ(rows, (std::vector<int>{0, 0, 1, 1}));
}

TEST(Launch, RejectsTopologySizeMismatch) {
  EXPECT_THROW(core::launch("data=4", sim::Topology::system_i()),
               std::invalid_argument);
  EXPECT_NO_THROW(core::launch("data=8", sim::Topology::system_i()));
}
