// The "unified system" claim: free combination of parallelism methods.
// Flagship integration tests running data + tensor + pipeline parallelism
// together in one SPMD program, verified against serial references, plus the
// functional hybrid CPU/GPU Adam.

#include <gtest/gtest.h>

#include "models/classifier.hpp"
#include "nn/layers.hpp"
#include "pp/pipeline.hpp"
#include "sp/ring_attention.hpp"
#include "tp/linear1d.hpp"
#include "zero/hybrid_adam.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace pp = ca::pp;
namespace models = ca::models;

namespace {

struct World {
  explicit World(core::Config cfg)
      : cluster(sim::Topology::uniform(cfg.world_size(), 100e9)),
        backend(cluster),
        ctx(backend, cfg) {
    // Serial-equivalence suite: pin the wire to fp32 (see DESIGN.md §10).
    ctx.set_comm_dtype(ca::tensor::Dtype::kF32);
  }
  tp::Env env(int g) { return tp::Env{&ctx, g}; }

  sim::Cluster cluster;
  col::Backend backend;
  core::ParallelContext ctx;
};

}  // namespace

TEST(Hybrid, DataTensorPipelineCombined) {
  // world 8 = data(2) x pipeline(2) x tensor(2): each pipeline stage is a
  // 1D-tensor-parallel MLP, each data replica sees half the global batch as
  // 2 micro-batches, gradients all-reduce over the data group at the end.
  core::Config cfg;
  cfg.data_parallel_size = 2;
  cfg.pipeline_parallel_size = 2;
  cfg.tensor_parallel_size = 2;
  cfg.tensor_mode = core::TpMode::k1d;
  World w(cfg);

  const std::int64_t h = 8, f = 16;
  const std::int64_t micro_rows = 2, micros = 2;
  const std::int64_t global_rows = micro_rows * micros * 2;  // 2 dp replicas

  auto x_global = t::randn(t::Shape{global_rows, h}, 31);
  auto target = t::randn(t::Shape{global_rows, h}, 32);

  // MSE normalized by the GLOBAL row count so gradient contributions of all
  // replicas/micros sum to the serial gradient.
  auto mse = [&](const t::Tensor& y, const t::Tensor& tt, t::Tensor& dy) {
    dy = t::sub(y, tt);
    const float loss =
        0.5f * t::sum(t::mul(dy, dy)) / static_cast<float>(global_rows);
    t::scale_(dy, 1.0f / static_cast<float>(global_rows));
    return loss;
  };

  // ---- serial reference: both stages, all rows, grads accumulated --------------
  nn::Mlp s_stage0("stage0", h, f, 41);
  nn::Mlp s_stage1("stage1", h, f, 42);
  float serial_loss = 0.0f;
  for (std::int64_t m = 0; m < global_rows / micro_rows; ++m) {
    auto xm = t::narrow(x_global, 0, m * micro_rows, micro_rows);
    auto tm = t::narrow(target, 0, m * micro_rows, micro_rows);
    auto y = s_stage1.forward(s_stage0.forward(xm));
    t::Tensor dy;
    serial_loss += mse(y, tm, dy);
    s_stage0.backward(s_stage1.backward(dy));
  }

  // ---- parallel run -------------------------------------------------------------
  std::vector<float> losses(8, -1.0f);
  std::vector<t::Tensor> fc1_grad(8);
  w.cluster.run([&](int g) {
    auto env = w.env(g);
    const int dp_rank = w.ctx.data_rank(g);
    const int stage = w.ctx.pipeline_rank(g);

    // this stage's tensor-parallel module (seeds match the serial stages)
    tp::Mlp1D module(env, stage == 0 ? "stage0" : "stage1", h, f,
                     stage == 0 ? 41 : 42);

    // this replica's half of the batch, as micro-batches
    std::vector<t::Tensor> inputs;
    const std::int64_t base = dp_rank * micro_rows * micros;
    for (std::int64_t m = 0; m < micros; ++m)
      inputs.push_back(t::narrow(x_global, 0, base + m * micro_rows, micro_rows));

    pp::Pipeline pipe(env, module, t::Shape{micro_rows, h},
                      pp::Schedule::kOneFOneB);
    const float loss = pipe.train_step(
        static_cast<int>(micros), inputs,
        [&](const t::Tensor& y, t::Tensor& dy, int m) {
          auto tm = t::narrow(target, 0, base + m * micro_rows, micro_rows);
          return mse(y, tm, dy);
        });

    // data-parallel gradient synchronization (sum; loss already normalized
    // by the global row count)
    auto& dp = w.ctx.data_group(g);
    for (nn::Parameter* p : module.parameters())
      dp.all_reduce(g, p->grad.data());

    losses[static_cast<std::size_t>(g)] = loss * static_cast<float>(micros);
    fc1_grad[static_cast<std::size_t>(g)] =
        module.parameters()[0]->grad.clone();
  });

  // losses: each last-stage rank saw its replica's half; the two halves sum
  // to the serial total
  float total_loss = 0.0f;
  for (int g = 0; g < 8; ++g) {
    if (w.ctx.is_last_stage(g) && w.ctx.tensor_rank(g) == 0)
      total_loss += losses[static_cast<std::size_t>(g)];
  }
  EXPECT_NEAR(total_loss, serial_loss, 1e-5f);

  // stage-0, tensor-rank-0 ranks hold the first column shard of stage0.fc1;
  // after dp sync it must equal the serial gradient's first column chunk
  std::vector<nn::Parameter*> serial_params;
  s_stage0.collect_parameters(serial_params);
  auto expected_fc1 = t::chunk(serial_params[0]->grad, 1, 2, 0);
  for (int g : {0, 4}) {  // (dp=0, stage=0, t=0) and (dp=1, stage=0, t=0)
    EXPECT_TRUE(t::allclose(fc1_grad[static_cast<std::size_t>(g)], expected_fc1,
                            1e-4f))
        << "grank " << g;
  }
  // and stage-1 ranks hold stage1 shards
  std::vector<nn::Parameter*> serial_params1;
  s_stage1.collect_parameters(serial_params1);
  auto expected_stage1 = t::chunk(serial_params1[0]->grad, 1, 2, 1);
  EXPECT_TRUE(t::allclose(fc1_grad[3], expected_stage1, 1e-4f));  // (0,1,1)
}

TEST(Hybrid, DataParallelOver2dTensorParallel) {
  // world 8 = data(2) x 2D-tensor(4): each replica trains its half batch
  // through a 2D-parallel classifier; after dp grad averaging the update
  // equals serial training on the full batch.
  core::Config cfg;
  cfg.data_parallel_size = 2;
  cfg.tensor_parallel_size = 4;
  cfg.tensor_mode = core::TpMode::k2d;
  World w(cfg);

  const models::Classifier::Config mc{8, 16, 8, 1, 7};
  ca::data::SyntheticClassification ds(1024, 8, 8, 71);
  const std::int64_t half = 8;

  // serial on the full batch of 16
  models::Classifier serial(mc);
  auto x_full = ds.batch_features(0, 2 * half);
  auto y_full = ds.batch_labels(0, 2 * half);
  serial.train_batch(x_full, y_full);

  std::vector<t::Tensor> grads(8);
  w.cluster.run([&](int g) {
    models::Classifier model(w.env(g), mc);
    const int dp_rank = w.ctx.data_rank(g);
    auto x = ds.batch_features(dp_rank * half, half);
    auto y = ds.batch_labels(dp_rank * half, half);
    model.train_batch(x, y);
    // dp sync with averaging (each replica used mean-CE over its half)
    auto& dp = w.ctx.data_group(g);
    for (nn::Parameter* p : model.parameters()) {
      dp.all_reduce(g, p->grad.data());
      t::scale_(p->grad, 0.5f);
    }
    grads[static_cast<std::size_t>(g)] = model.parameters()[0]->grad.clone();
  });

  // embed weight block (r, c) of grank 0 (= row 0, col 0)
  auto expected = t::chunk(t::chunk(serial.parameters()[0]->grad, 0, 2, 0), 1,
                           2, 0);
  EXPECT_TRUE(t::allclose(grads[0], expected, 1e-4f));
  EXPECT_TRUE(t::allclose(grads[4], expected, 1e-4f));  // other replica agrees
}

// ---- hybrid Adam ------------------------------------------------------------------

TEST(HybridAdam, NumericallyIdenticalToAdam) {
  core::Config cfg;
  World w(cfg);
  w.cluster.run([&](int g) {
    nn::Linear a("a", 8, 8, 5);
    nn::Linear b("b", 8, 8, 5);
    auto x = t::randn(t::Shape{4, 8}, 6);
    auto dy = t::randn(t::Shape{4, 8}, 7);
    a.forward(x);
    a.backward(dy);
    b.forward(x);
    b.backward(dy);

    ca::optim::Adam plain(a.parameters(), {});
    ca::zero::HybridAdam hybrid(w.env(g), b.parameters(), {});
    plain.step();
    hybrid.step();
    EXPECT_EQ(t::max_diff(a.weight().value, b.weight().value), 0.0f);
  });
}

TEST(HybridAdam, SplitsStateByAvailableMemory) {
  core::Config cfg;
  World w(cfg);
  w.cluster.run([&](int g) {
    auto env = w.env(g);
    // consume most of the device so only part of the state fits
    nn::Linear m("m", 512, 512, 9);  // 262k params -> ~3 MB of state
    const std::int64_t state = m.weight().numel() * 12;
    env.mem().alloc(env.mem().available() - state / 2);

    ca::zero::HybridAdam hybrid(env, m.parameters(), {});
    EXPECT_GT(hybrid.cpu_elems(), 0);
    EXPECT_LT(hybrid.gpu_fraction(), 1.0);
    // the bias (small) should still have landed on the GPU
    EXPECT_GT(hybrid.gpu_elems(), 0);

    // step still works and charges time for the CPU part + transfer back
    const double before = env.dev().clock();
    m.parameters()[0]->grad.fill(0.1f);
    hybrid.step();
    EXPECT_GT(env.dev().clock(), before);
  });
}

TEST(HybridAdam, AllOnGpuWhenItFits) {
  core::Config cfg;
  World w(cfg);
  w.cluster.run([&](int g) {
    nn::Linear m("m", 32, 32, 9);
    ca::zero::HybridAdam hybrid(w.env(g), m.parameters(), {});
    EXPECT_DOUBLE_EQ(hybrid.gpu_fraction(), 1.0);
    EXPECT_EQ(hybrid.cpu_elems(), 0);
  });
}

TEST(Hybrid, SequenceParallelPlusPipeline) {
  // world 8 = sequence(4) x pipeline(2): each stage is a Ring-Self-Attention
  // transformer block over sub-sequences; activations cross pipeline stages
  // WITHOUT any gather — the property behind Figure 13b.
  core::Config cfg;
  cfg.sequence_parallel_size = 4;
  cfg.pipeline_parallel_size = 2;
  World w(cfg);

  const std::int64_t b = 2, s = 8, h = 8, heads = 2, f = 16;
  const int micros = 2;
  auto x = t::randn(t::Shape{micros * b, s, h}, 81);
  auto target = t::randn(t::Shape{micros * b, s, h}, 82);
  const float norm = static_cast<float>(micros * b * s * h);

  // serial: two chained transformer blocks, MSE over all micro-batches
  nn::TransformerBlock s0("stage0", h, heads, f, 83);
  nn::TransformerBlock s1("stage1", h, heads, f, 84);
  float serial_loss = 0.0f;
  for (int m = 0; m < micros; ++m) {
    auto xm = t::narrow(x, 0, m * b, b);
    auto tm = t::narrow(target, 0, m * b, b);
    auto y = s1.forward(s0.forward(xm));
    auto dy = t::sub(y, tm);
    serial_loss += 0.5f * t::sum(t::mul(dy, dy)) / norm;
    t::scale_(dy, 1.0f / norm);
    s0.backward(s1.backward(dy));
  }

  std::vector<float> losses(8, 0.0f);
  std::vector<t::Tensor> ln_grad(8);
  w.cluster.run([&](int g) {
    auto env = w.env(g);
    const int stage = w.ctx.pipeline_rank(g);
    const int sp_idx = w.ctx.tensor_rank(g);  // sequence slot

    ca::sp::TransformerBlockSP blk(env, stage == 0 ? "stage0" : "stage1", h,
                                   heads, f, stage == 0 ? 83 : 84);

    // first-stage inputs: this rank's sub-sequence of each micro-batch
    std::vector<t::Tensor> inputs;
    for (int m = 0; m < micros; ++m)
      inputs.push_back(t::chunk(t::narrow(x, 0, m * b, b), 1, 4, sp_idx));

    pp::Pipeline pipe(env, blk, t::Shape{b, s / 4, h},
                      pp::Schedule::kOneFOneB);
    const float loss = pipe.train_step(
        micros, inputs, [&](const t::Tensor& y, t::Tensor& dy, int m) {
          auto tm = t::chunk(t::narrow(target, 0, m * b, b), 1, 4, sp_idx);
          dy = t::sub(y, tm);
          const float l = 0.5f * t::sum(t::mul(dy, dy)) / norm;
          t::scale_(dy, 1.0f / norm);
          return l;
        });
    losses[static_cast<std::size_t>(g)] = loss * micros;  // undo the mean
    ln_grad[static_cast<std::size_t>(g)] = blk.parameters()[0]->grad.clone();
  });

  // last-stage losses are per-sub-sequence partials; they sum to serial
  float total = 0.0f;
  for (int g = 0; g < 8; ++g)
    if (w.ctx.is_last_stage(g)) total += losses[static_cast<std::size_t>(g)];
  EXPECT_NEAR(total, serial_loss, 1e-5f);

  // stage modules' (replicated, SP-synced) LayerNorm grads match serial
  std::vector<nn::Parameter*> ref0, ref1;
  s0.collect_parameters(ref0);
  s1.collect_parameters(ref1);
  EXPECT_TRUE(t::allclose(ln_grad[0], ref0[0]->grad, 1e-3f));  // stage 0
  EXPECT_TRUE(t::allclose(ln_grad[4], ref1[0]->grad, 1e-3f));  // stage 1
}
