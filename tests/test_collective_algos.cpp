// Tests for the pluggable collective-algorithm layer: the two-level topology
// plan, the AlgoSelector decision table, algorithm-aware costs, and — the
// load-bearing contract — bit-identical results for every algorithm ×
// {blocking, async} × degenerate payload sizes against the serial oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "collective/algo.hpp"
#include "collective/backend.hpp"
#include "collective/cost.hpp"
#include "collective/schedule.hpp"
#include "core/context.hpp"
#include "sim/cluster.hpp"

namespace col = ca::collective;
namespace core = ca::core;
namespace sim = ca::sim;

namespace {

struct Fixture {
  explicit Fixture(sim::Topology topo) : cluster(std::move(topo)), backend(cluster) {}
  sim::Cluster cluster;
  col::Backend backend;
};

/// The canonical serial oracle: ascending-rank float fold, then scale — the
/// exact association every schedule's reducing actions use.
std::vector<float> oracle_all_reduce(const std::vector<std::vector<float>>& bufs,
                                     float scale) {
  std::vector<float> out(bufs.front().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    float acc = bufs[0][i];
    for (std::size_t m = 1; m < bufs.size(); ++m) acc += bufs[m][i];
    out[i] = acc * scale;
  }
  return out;
}

/// Rank r's deterministic test payload (irrational-ish values so float
/// reassociation would actually change bits).
std::vector<float> payload(int rank, std::int64_t n) {
  std::vector<float> buf(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    buf[static_cast<std::size_t>(i)] =
        std::sin(0.37f * static_cast<float>(i + 1)) *
        (1.0f + 0.13f * static_cast<float>(rank));
  }
  return buf;
}

constexpr col::Algo kAllAlgos[] = {
    col::Algo::kChunked, col::Algo::kRing, col::Algo::kHierarchical,
    col::Algo::kSingleRoot};

}  // namespace

// ---- two-level plan ---------------------------------------------------------

TEST(TwoLevelPlan, FollowsNodesOnMultiNodeTopology) {
  const auto topo = sim::Topology::system_iii(4);  // 4 nodes x 4 GPUs
  std::vector<int> ranks(16);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());
  EXPECT_TRUE(plan.by_node);
  ASSERT_EQ(plan.num_blocks(), 4);
  EXPECT_EQ(plan.min_block(), 4);
  EXPECT_EQ(plan.max_block(), 4);
  EXPECT_EQ(plan.leaders, (std::vector<int>{0, 4, 8, 12}));
  // Slot-major owner permutation is a permutation of 0..15.
  auto perm = plan.owner_permutation();
  ASSERT_EQ(perm.size(), 16u);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, ranks);
  EXPECT_EQ(perm[0], 0);  // slot 0: the leaders, in block order
  EXPECT_EQ(perm[1], 4);
}

TEST(TwoLevelPlan, NotViableOnSingleNode) {
  const auto topo = sim::Topology::system_i();  // one 8-GPU node
  std::vector<int> ranks(8);
  std::iota(ranks.begin(), ranks.end(), 0);
  EXPECT_FALSE(col::plan_two_level(topo, ranks).viable());
}

TEST(TwoLevelPlan, NotViableOnUniformTestTopology) {
  const auto topo = sim::Topology::uniform(8, 100e9);
  std::vector<int> ranks(8);
  std::iota(ranks.begin(), ranks.end(), 0);
  EXPECT_FALSE(col::plan_two_level(topo, ranks).viable());
}

TEST(TwoLevelPlan, VirtualSqrtBlocksOnFlatFabric) {
  const auto topo = sim::Topology::system_iv(16);  // 16 nodes x 1 GPU
  std::vector<int> ranks(16);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());
  EXPECT_FALSE(plan.by_node);
  EXPECT_EQ(plan.num_blocks(), 4);  // ~sqrt(16) contiguous blocks
  EXPECT_EQ(plan.min_block(), 4);
}

TEST(TwoLevelPlan, SubsetOfNodesUsesOnlyThoseNodes) {
  const auto topo = sim::Topology::system_iii(2);  // 8 devices, 2 nodes
  // A pure-DP group over devices {0, 1, 4, 5}: 2 per node.
  const std::vector<int> ranks{0, 1, 4, 5};
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());
  EXPECT_TRUE(plan.by_node);
  ASSERT_EQ(plan.num_blocks(), 2);
  // Blocks hold *member indices* into ranks, not global ranks.
  EXPECT_EQ(plan.blocks[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.blocks[1], (std::vector<int>{2, 3}));
}

// ---- selector ---------------------------------------------------------------

TEST(AlgoSelector, DecisionTable) {
  const auto multi = sim::Topology::system_iii(4);
  std::vector<int> ranks(16);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(multi, ranks);
  col::AlgoSelector sel;

  // Small reducing messages: single-root (also the n < P degenerate fix).
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 512, multi, ranks, plan),
            col::Algo::kSingleRoot);
  // Gradient-bucket-size messages on a node-spanning group: hierarchical
  // wins the cost race. (At 64 MiB on this small 4-node machine the
  // pipelined ring overtakes it — the same crossover the System IV
  // regression below pins.)
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 4 << 20, multi, ranks, plan),
            col::Algo::kHierarchical);
  EXPECT_EQ(sel.select(col::Op::kReduceScatter, 1 << 20, multi, ranks, plan),
            col::Algo::kHierarchical);
  // Mid-size: no other candidate clears its byte gate; chunked.
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 4096, multi, ranks, plan),
            col::Algo::kChunked);
  // Non-viable plan, large message: pipelined ring beats store-and-forward.
  const col::TwoLevelPlan flat;
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 64 << 20, multi, ranks, flat),
            col::Algo::kRing);
  // Ops without schedule freedom never leave chunked.
  EXPECT_EQ(sel.select(col::Op::kAllToAll, 64 << 20, multi, ranks, plan),
            col::Algo::kChunked);
  EXPECT_EQ(sel.select(col::Op::kGather, 64 << 20, multi, ranks, plan),
            col::Algo::kChunked);
}

TEST(AlgoSelector, PolicyForcesAndHierarchicalDegrades) {
  const auto topo = sim::Topology::uniform(8, 100e9);
  std::vector<int> ranks(8);
  std::iota(ranks.begin(), ranks.end(), 0);
  col::AlgoPolicy policy;
  policy.forced = col::Algo::kRing;
  col::AlgoSelector sel(&policy);
  const col::TwoLevelPlan flat;
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 64, topo, ranks, flat),
            col::Algo::kRing);

  // Forced hierarchical silently degrades when the plan is not viable.
  policy.forced = col::Algo::kHierarchical;
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 64 << 20, topo, ranks, flat),
            col::Algo::kChunked);
}

TEST(AlgoSelector, SystemIvCrossoverPicksRingAt64MiB) {
  // Regression for the crossover a static threshold table missed: on the
  // flat System IV fabric the sqrt-P virtual-block hierarchy is cheapest at
  // gradient-bucket sizes, but by 64 MiB the pipelined ring overtakes it
  // (the leader ring's inter-block exchange stops paying for itself). The
  // cost-ranked selector must land on each side of the crossover.
  const auto topo = sim::Topology::system_iv(64);
  std::vector<int> ranks(64);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());

  const auto t = [&](col::Algo a, std::int64_t bytes) {
    return col::collective_time(col::Op::kAllReduce, a, topo, ranks, bytes,
                                plan);
  };
  ASSERT_LT(t(col::Algo::kHierarchical, 4 << 20), t(col::Algo::kRing, 4 << 20));
  ASSERT_LT(t(col::Algo::kRing, 64 << 20),
            t(col::Algo::kHierarchical, 64 << 20));

  col::AlgoSelector sel;
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 4 << 20, topo, ranks, plan),
            col::Algo::kHierarchical);
  EXPECT_EQ(sel.select(col::Op::kAllReduce, 64 << 20, topo, ranks, plan),
            col::Algo::kRing);
}

TEST(AlgoSelector, ParsesKnobValues) {
  bool ok = false;
  EXPECT_EQ(col::AlgoSelector::parse("auto", &ok), std::nullopt);
  EXPECT_TRUE(ok);
  EXPECT_EQ(col::AlgoSelector::parse("hierarchical", &ok),
            col::Algo::kHierarchical);
  EXPECT_TRUE(ok);
  EXPECT_EQ(col::AlgoSelector::parse("ring", &ok), col::Algo::kRing);
  EXPECT_EQ(col::AlgoSelector::parse("single_root", &ok),
            col::Algo::kSingleRoot);
  EXPECT_EQ(col::AlgoSelector::parse("chunked", &ok), col::Algo::kChunked);
  EXPECT_EQ(col::AlgoSelector::parse("nonsense", &ok), std::nullopt);
  EXPECT_FALSE(ok);
}

TEST(AlgoSelector, GroupAutoPicksHierarchicalForLargeDpSync) {
  // The headline scenario: a pure-DP group spanning System III nodes must
  // auto-select hierarchical for gradient-sized messages.
  Fixture f(sim::Topology::system_iii(2));
  auto& world = f.backend.world();
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 16 << 20),
            col::Algo::kHierarchical);
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 256), col::Algo::kSingleRoot);
}

// ---- schedule IR ------------------------------------------------------------

TEST(Schedule, ChunkRangeCoversBufferExactly) {
  for (const std::int64_t n : {0LL, 1LL, 5LL, 7LL, 64LL, 1000LL}) {
    for (const int p : {1, 2, 4, 8}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (int i = 0; i < p; ++i) {
        const auto [lo, hi] = col::chunk_range(n, i, p);
        EXPECT_EQ(lo, prev_end);
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        prev_end = hi;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Schedule, HierarchicalAllReduceHasInterNodePhaseBoundary) {
  const auto chunked = col::build_schedule(col::Op::kAllReduce,
                                           col::Algo::kChunked, 8, 1024, 1024,
                                           0, {});
  const auto hier = col::build_schedule(col::Op::kAllReduce,
                                        col::Algo::kHierarchical, 8, 1024,
                                        1024, 0, {4, 0, 5, 1, 6, 2, 7, 3});
  EXPECT_EQ(chunked.phases.size(), 2u);
  EXPECT_EQ(hier.phases.size(), 3u);  // reduce | inter-node boundary | copy-out
  EXPECT_FALSE(chunked.phases.back().barrier_after);  // arena-only final read
}

TEST(Schedule, SingleRootAllReduceHasNoEmptyChunkProblem) {
  // n < P: the chunked schedule would hand most members empty chunks; the
  // single-root schedule gives the root one n-length reduce instead.
  const auto s = col::build_schedule(col::Op::kAllReduce,
                                     col::Algo::kSingleRoot, 8, 3, 3, 0, {});
  std::size_t total_actions = 0;
  for (const auto& ph : s.phases) {
    for (const auto& acts : ph.actions) total_actions += acts.size();
  }
  // 1 root reduce + 8 copy-outs.
  EXPECT_EQ(total_actions, 9u);
}

// ---- bit-identicality matrix ------------------------------------------------

// Every algorithm × {blocking, async} × awkward sizes (0, 1, n < P,
// n % P != 0, large) must reproduce the serial oracle bit for bit on a
// multi-node topology where hierarchical is viable.
TEST(AlgoMatrix, AllReduceBitIdenticalToOracleEveryAlgorithm) {
  constexpr int kWorld = 8;
  const float scale = 1.0f / 3.0f;
  for (const auto algo : kAllAlgos) {
    for (const std::int64_t n : {0LL, 1LL, 5LL, 37LL, 4096LL}) {
      Fixture f(sim::Topology::system_iii(2));
      f.backend.set_forced_algo(algo);
      std::vector<std::vector<float>> bufs;
      for (int r = 0; r < kWorld; ++r) bufs.push_back(payload(r, n));
      const auto want = oracle_all_reduce(bufs, scale);

      f.cluster.run([&](int rank) {
        f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)],
                                     scale);
      });
      for (int r = 0; r < kWorld; ++r) {
        for (std::int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                    want[static_cast<std::size_t>(i)])
              << "algo=" << col::algo_name(algo) << " n=" << n << " rank=" << r
              << " i=" << i;
        }
      }
    }
  }
}

TEST(AlgoMatrix, AsyncAllReduceBitIdenticalEveryAlgorithm) {
  constexpr int kWorld = 8;
  const float scale = 0.125f;
  for (const auto algo : kAllAlgos) {
    for (const std::int64_t n : {1LL, 5LL, 37LL, 4096LL}) {
      Fixture f(sim::Topology::system_iii(2));
      f.backend.set_forced_algo(algo);
      std::vector<std::vector<float>> bufs;
      for (int r = 0; r < kWorld; ++r) bufs.push_back(payload(r, n));
      const auto want = oracle_all_reduce(bufs, scale);

      f.cluster.run([&](int rank) {
        auto h = f.backend.world().all_reduce_async(
            rank, bufs[static_cast<std::size_t>(rank)], scale);
        f.cluster.device(rank).compute_fp32(1.0e9);  // overlap some compute
        h.wait();
      });
      for (int r = 0; r < kWorld; ++r) {
        for (std::int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                    want[static_cast<std::size_t>(i)])
              << "algo=" << col::algo_name(algo) << " n=" << n << " rank=" << r;
        }
      }
    }
  }
}

TEST(AlgoMatrix, ReduceScatterAndAllGatherBitIdenticalEveryAlgorithm) {
  constexpr int kWorld = 8;
  const std::int64_t n_out = 37;  // non-divisible-feeling odd chunk size
  const std::int64_t n_in = n_out * kWorld;
  for (const auto algo : kAllAlgos) {
    Fixture f(sim::Topology::system_iii(2));
    f.backend.set_forced_algo(algo);
    std::vector<std::vector<float>> ins;
    for (int r = 0; r < kWorld; ++r) ins.push_back(payload(r, n_in));
    const auto sum = oracle_all_reduce(ins, 0.25f);

    std::vector<std::vector<float>> rs_out(
        kWorld, std::vector<float>(static_cast<std::size_t>(n_out)));
    std::vector<std::vector<float>> ag_out(
        kWorld, std::vector<float>(static_cast<std::size_t>(n_in)));
    f.cluster.run([&](int rank) {
      const auto u = static_cast<std::size_t>(rank);
      f.backend.world().reduce_scatter(rank, ins[u], rs_out[u], 0.25f);
      f.backend.world().all_gather(
          rank, std::span<const float>(ins[u]).subspan(0, n_out), ag_out[u]);
    });
    for (int r = 0; r < kWorld; ++r) {
      for (std::int64_t i = 0; i < n_out; ++i) {
        ASSERT_EQ(rs_out[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  sum[static_cast<std::size_t>(r * n_out + i)])
            << "algo=" << col::algo_name(algo);
      }
      for (int m = 0; m < kWorld; ++m) {
        for (std::int64_t i = 0; i < n_out; ++i) {
          ASSERT_EQ(
              ag_out[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(m * n_out + i)],
              ins[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)])
              << "algo=" << col::algo_name(algo);
        }
      }
    }
  }
}

TEST(AlgoMatrix, BroadcastAndReduceMatchEveryAlgorithm) {
  constexpr int kWorld = 8;
  const std::int64_t n = 37;
  for (const auto algo : kAllAlgos) {
    Fixture f(sim::Topology::system_iii(2));
    f.backend.set_forced_algo(algo);
    std::vector<std::vector<float>> bc(kWorld,
                                       std::vector<float>(static_cast<std::size_t>(n)));
    bc[3] = payload(3, n);
    std::vector<std::vector<float>> rd;
    for (int r = 0; r < kWorld; ++r) rd.push_back(payload(r + 11, n));
    const auto rd_want = oracle_all_reduce(rd, 1.0f);

    f.cluster.run([&](int rank) {
      const auto u = static_cast<std::size_t>(rank);
      f.backend.world().broadcast(rank, bc[u], /*root=*/3);
      f.backend.world().reduce(rank, rd[u], /*root=*/5);
    });
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(bc[static_cast<std::size_t>(r)], bc[3])
          << "algo=" << col::algo_name(algo);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(rd[5][static_cast<std::size_t>(i)],
                rd_want[static_cast<std::size_t>(i)])
          << "algo=" << col::algo_name(algo);
    }
  }
}

TEST(AlgoMatrix, RepeatedRunsAreDeterministic) {
  constexpr int kWorld = 8;
  const std::int64_t n = 1000;
  std::vector<float> first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    Fixture f(sim::Topology::system_iii(2));
    std::vector<std::vector<float>> bufs;
    for (int r = 0; r < kWorld; ++r) bufs.push_back(payload(r, n));
    f.cluster.run([&](int rank) {
      f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)],
                                   0.5f);
    });
    if (repeat == 0) {
      first = bufs[0];
    } else {
      EXPECT_EQ(bufs[0], first);
    }
  }
}

// ---- n < P regression (the degenerate-chunk fast path) ----------------------

TEST(Group, TinyAllReduceSelectsSingleRootAndSumsCorrectly) {
  constexpr int kWorld = 8;
  Fixture f(sim::Topology::uniform(kWorld, 100e9));
  auto& world = f.backend.world();
  // 2 floats over 8 ranks: n < P leaves 6 members without an ownership
  // chunk; the selector must route this to single-root.
  EXPECT_EQ(world.algo_for(col::Op::kAllReduce, 8), col::Algo::kSingleRoot);

  std::vector<std::vector<float>> bufs(kWorld, std::vector<float>(2));
  for (int r = 0; r < kWorld; ++r) {
    bufs[static_cast<std::size_t>(r)] = {static_cast<float>(r), 1.0f};
  }
  f.cluster.run([&](int rank) {
    world.all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)],
              (std::vector<float>{28.0f, 8.0f}));
  }
}

// ---- cost model -------------------------------------------------------------

TEST(HierarchicalCost, BeatsChunkedForLargeMessagesOnSystemIii) {
  const auto topo = sim::Topology::system_iii(16);
  std::vector<int> ranks(64);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());
  const std::int64_t bytes = 64 << 20;
  const double chunked = col::collective_time(col::Op::kAllReduce,
                                              col::Algo::kChunked, topo, ranks,
                                              bytes, plan);
  const double hier = col::collective_time(col::Op::kAllReduce,
                                           col::Algo::kHierarchical, topo,
                                           ranks, bytes, plan);
  EXPECT_LT(hier, chunked);
}

TEST(HierarchicalCost, BeatsChunkedOnFlatSystemIvViaLatency) {
  const auto topo = sim::Topology::system_iv(64);
  std::vector<int> ranks(64);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  ASSERT_TRUE(plan.viable());
  const std::int64_t bytes = 64 << 20;
  const double chunked = col::collective_time(col::Op::kAllReduce,
                                              col::Algo::kChunked, topo, ranks,
                                              bytes, plan);
  const double hier = col::collective_time(col::Op::kAllReduce,
                                           col::Algo::kHierarchical, topo,
                                           ranks, bytes, plan);
  EXPECT_LT(hier, chunked);
}

TEST(HierarchicalCost, PerRankVolumeIsAlgorithmInvariant) {
  // (m-1)/m + (l-1)/(l*m) = (p-1)/p: the two-level decomposition re-routes
  // the inter-block share over the leader ring but moves exactly the same
  // per-rank total, so device byte counters never depend on the algorithm.
  const auto topo = sim::Topology::system_iii(4);
  std::vector<int> ranks(16);
  std::iota(ranks.begin(), ranks.end(), 0);
  const auto plan = col::plan_two_level(topo, ranks);
  const std::int64_t bytes = 1 << 20;
  for (const auto algo : kAllAlgos) {
    EXPECT_EQ(col::bytes_sent_per_rank(col::Op::kAllReduce, algo, 16, bytes,
                                       plan),
              col::bytes_sent_per_rank(col::Op::kAllReduce, 16, bytes));
  }
}

// ---- observability ----------------------------------------------------------

TEST(AlgoTrace, CommSpansCarryAlgorithmTagWithUnchangedName) {
  constexpr int kWorld = 8;
  Fixture f(sim::Topology::system_iii(2));
  f.cluster.enable_tracing();
  std::vector<std::vector<float>> bufs;
  const std::int64_t n = 1 << 20;  // 4 MiB: auto-selects hierarchical
  for (int r = 0; r < kWorld; ++r) bufs.push_back(payload(r, n));
  f.cluster.run([&](int rank) {
    f.backend.world().all_reduce(rank, bufs[static_cast<std::size_t>(rank)]);
  });
  const auto& events = f.cluster.tracer()->rank(0).events();
  bool found = false;
  for (const auto& e : events) {
    if (e.name == "world.all_reduce") {
      EXPECT_EQ(e.algo, "hierarchical");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- context subgroups ------------------------------------------------------

TEST(ContextHier, DataNodeAndLeaderSubgroupsOnMultiNodeDp) {
  sim::Cluster cluster(sim::Topology::system_iii(2));  // 8 ranks, 2 nodes
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.data_parallel_size = 8;
  core::ParallelContext ctx(backend, cfg);

  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(ctx.has_data_node_group(r));
    EXPECT_EQ(ctx.data_node_group(r).size(), 4);
    EXPECT_EQ(ctx.is_data_leader(r), r == 0 || r == 4);
  }
  EXPECT_EQ(ctx.data_node_group(0).ranks(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ctx.data_node_group(5).ranks(), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(ctx.data_leader_group(0).ranks(), (std::vector<int>{0, 4}));
}

TEST(ContextHier, NoSubgroupsWhenDataGroupFitsOneNode) {
  sim::Cluster cluster(sim::Topology::system_i());
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.data_parallel_size = 8;
  core::ParallelContext ctx(backend, cfg);
  for (int r = 0; r < 8; ++r) {
    EXPECT_FALSE(ctx.has_data_node_group(r));
    EXPECT_FALSE(ctx.is_data_leader(r));
  }
}

TEST(ContextHier, ManualTwoLevelAllReduceMatchesGlobal) {
  // Compose gradient sync from the explicit subgroups — intra-node reduce to
  // the leader, leader all-reduce, intra-node broadcast — and check it agrees
  // with the one-shot all_reduce (tolerance-based: the manual composition
  // reassociates the sum across levels).
  constexpr int kWorld = 8;
  const std::int64_t n = 256;
  sim::Cluster cluster(sim::Topology::system_iii(2));
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.data_parallel_size = kWorld;
  core::ParallelContext ctx(backend, cfg);

  std::vector<std::vector<float>> manual, oneshot;
  for (int r = 0; r < kWorld; ++r) {
    manual.push_back(payload(r, n));
    oneshot.push_back(payload(r, n));
  }
  cluster.run([&](int rank) {
    const auto u = static_cast<std::size_t>(rank);
    auto& node = ctx.data_node_group(rank);
    node.reduce(rank, manual[u], /*root=*/0);
    if (ctx.is_data_leader(rank)) {
      ctx.data_leader_group(rank).all_reduce(rank, manual[u]);
    }
    node.broadcast(rank, manual[u], /*root=*/0);
    ctx.data_group(rank).all_reduce(rank, oneshot[u]);
  });
  for (int r = 0; r < kWorld; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(manual[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  oneshot[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  1e-4f);
    }
  }
}

TEST(ContextHier, ConfigKnobForcesAlgorithm) {
  sim::Cluster cluster(sim::Topology::system_iii(2));
  col::Backend backend(cluster);
  core::Config cfg;
  cfg.data_parallel_size = 8;
  cfg.collective_algo = "chunked";
  core::ParallelContext ctx(backend, cfg);
  // Even a hierarchical-friendly size must now stay chunked.
  EXPECT_EQ(backend.world().algo_for(col::Op::kAllReduce, 64 << 20),
            col::Algo::kChunked);

  core::Config bad;
  bad.collective_algo = "nonsense";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ---- topology queries -------------------------------------------------------

TEST(TopologyNodes, NodeQueriesAndBandwidthClasses) {
  const auto topo = sim::Topology::system_iii(2);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_TRUE(topo.same_node(0, 3));
  EXPECT_FALSE(topo.same_node(3, 4));
  const std::vector<int> spanning{0, 4};
  const std::vector<int> local{0, 1};
  EXPECT_TRUE(topo.spans_nodes(spanning));
  EXPECT_FALSE(topo.spans_nodes(local));
  EXPECT_DOUBLE_EQ(topo.intra_node_bandwidth(), 150.0e9);
  EXPECT_DOUBLE_EQ(topo.inter_node_bandwidth(), 25.0e9);
}
