// Model-zoo tests: named paper configs, the GPT language model (serial and
// 1D-tensor-parallel), and ViT parameter accounting.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "models/configs.hpp"
#include "models/gpt.hpp"
#include "models/vit.hpp"

namespace t = ca::tensor;
namespace nn = ca::nn;
namespace core = ca::core;
namespace sim = ca::sim;
namespace col = ca::collective;
namespace tp = ca::tp;
namespace models = ca::models;

TEST(Configs, PaperModelSizes) {
  // the paper's "GPT-2 of 10 billion parameters" and "OPT of 13 billion"
  EXPECT_NEAR(static_cast<double>(models::gpt2_10b().params()) / 1e9, 10.0, 0.5);
  EXPECT_NEAR(static_cast<double>(models::opt_13b().params()) / 1e9, 12.6, 0.5);
  // BERT-Base is ~85M transformer-layer params (110M with embeddings)
  EXPECT_NEAR(static_cast<double>(models::bert_base().params()) / 1e6, 85.0, 5.0);
  EXPECT_EQ(models::vit_convergence().heads, 6);
  EXPECT_EQ(models::vit_32l_4096h().hidden, 4096);
}

namespace {
models::GptModel::Config tiny_gpt() {
  models::GptModel::Config cfg;
  cfg.vocab = 64;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn = 32;
  cfg.layers = 2;
  cfg.seed = 3;
  return cfg;
}
}  // namespace

TEST(Gpt, ParamCountMatchesArchitecture) {
  auto cfg = tiny_gpt();
  models::GptModel m(cfg);
  const std::int64_t h = cfg.hidden, f = cfg.ffn, v = cfg.vocab;
  const std::int64_t per_block =
      (h * 3 * h + 3 * h) + (h * h + h) + (h * f + f + f * h + h) + 4 * h;
  const std::int64_t expect = v * h + cfg.seq * h +  // embeddings
                              cfg.layers * per_block + 2 * h +  // final LN
                              h * v + v;                        // head
  EXPECT_EQ(m.num_params(), expect);
}

TEST(Gpt, LearnsSyntheticTokenStream) {
  auto cfg = tiny_gpt();
  models::GptModel m(cfg);
  ca::data::SyntheticTokens stream(cfg.vocab, 5);
  const std::int64_t batch = 4;

  float first = 0.0f, last = 0.0f;
  for (int s = 0; s < 30; ++s) {
    auto toks = stream.tokens(0, batch * cfg.seq);  // same batch: overfit it
    for (nn::Parameter* p : m.parameters()) p->grad.fill(0.0f);
    const float loss = m.train_batch(toks, batch);
    for (nn::Parameter* p : m.parameters())
      t::axpy_(p->value, -0.05f, p->grad);
    if (s == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.7f * first);
}

TEST(Gpt, EvalLossMatchesTrainLossBeforeStep) {
  auto cfg = tiny_gpt();
  models::GptModel m(cfg);
  ca::data::SyntheticTokens stream(cfg.vocab, 6);
  auto toks = stream.tokens(0, 2 * cfg.seq);
  const float eval = m.eval_loss(toks, 2);
  const float train = m.train_batch(toks, 2);
  EXPECT_FLOAT_EQ(eval, train);
}

TEST(Gpt, TensorParallelMatchesSerial) {
  auto cfg = tiny_gpt();
  ca::data::SyntheticTokens stream(cfg.vocab, 7);
  auto toks = stream.tokens(0, 2 * cfg.seq);

  models::GptModel serial(cfg);
  const float ref = serial.train_batch(toks, 2);

  core::Config pcfg;
  pcfg.tensor_parallel_size = 2;
  pcfg.tensor_mode = core::TpMode::k1d;
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, pcfg);
  ctx.set_comm_dtype(t::Dtype::kF32);  // serial-equivalence test: fp32 wire

  std::vector<float> losses(2);
  std::vector<t::Tensor> emb_grad(2), pos_grad(2);
  cluster.run([&](int g) {
    models::GptModel m(tp::Env{&ctx, g}, models::GptModel::Mode::kTensor1D, cfg);
    losses[static_cast<std::size_t>(g)] = m.train_batch(toks, 2);
    emb_grad[static_cast<std::size_t>(g)] = m.parameters()[0]->grad.clone();
    pos_grad[static_cast<std::size_t>(g)] = m.parameters()[1]->grad.clone();
  });
  EXPECT_NEAR(losses[0], ref, 1e-4f);
  EXPECT_NEAR(losses[1], ref, 1e-4f);
  // the token embedding is vocabulary-parallel: each rank holds the grads of
  // its vocab rows (= the serial gradient's row chunk)
  for (int g = 0; g < 2; ++g) {
    EXPECT_TRUE(t::allclose(emb_grad[static_cast<std::size_t>(g)],
                            t::chunk(serial.parameters()[0]->grad, 0, 2, g),
                            1e-3f))
        << g;
  }
  // position embeddings are replicated; their grads equal the serial ones
  EXPECT_TRUE(t::allclose(pos_grad[0], serial.parameters()[1]->grad, 1e-3f));
}

TEST(Vit, ParamCountIndependentOfMode) {
  models::VitClassifier::Config vc;
  models::VitClassifier serial(vc);

  core::Config pcfg;
  pcfg.tensor_parallel_size = 2;
  pcfg.tensor_mode = core::TpMode::k1d;
  sim::Cluster cluster(sim::Topology::uniform(2, 100e9));
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, pcfg);
  ctx.set_comm_dtype(t::Dtype::kF32);  // serial-equivalence test: fp32 wire

  std::vector<std::int64_t> shard_params(2);
  cluster.run([&](int g) {
    models::VitClassifier m(tp::Env{&ctx, g},
                            models::VitClassifier::Mode::kTensor1D, vc);
    std::int64_t n = 0;
    for (nn::Parameter* p : m.parameters()) n += p->numel();
    shard_params[static_cast<std::size_t>(g)] = n;
  });
  std::int64_t serial_n = 0;
  for (nn::Parameter* p : serial.parameters()) serial_n += p->numel();
  // sharded blocks hold fewer parameters per rank than the serial model
  EXPECT_LT(shard_params[0], serial_n);
  EXPECT_EQ(shard_params[0], shard_params[1]);
}

// ---- TransformerClassifier: the strongest Figure-7 form ----------------------------

#include "models/transformer_classifier.hpp"

namespace {

models::TransformerClassifier::Config tc_config() {
  models::TransformerClassifier::Config cfg;
  cfg.patches = 4;
  cfg.patch_dim = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.ffn = 32;
  cfg.blocks = 1;
  cfg.classes = 8;
  cfg.seed = 9;
  return cfg;
}

float serial_tc_step(const t::Tensor& x, std::span<const std::int64_t> y) {
  models::TransformerClassifier m(tc_config());
  return m.train_batch(x, y);
}

}  // namespace

struct TcCase {
  core::TpMode mode;
  int size;
  int depth;
};

class TransformerClassifierModes : public ::testing::TestWithParam<TcCase> {};

TEST_P(TransformerClassifierModes, LossMatchesSerial) {
  const auto c = GetParam();
  auto cfg = tc_config();
  auto x = t::randn(t::Shape{8, cfg.patches, cfg.patch_dim}, 10);
  std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  const float ref = serial_tc_step(x, y);

  core::Config pcfg;
  pcfg.tensor_parallel_size = c.size;
  pcfg.tensor_mode = c.mode;
  pcfg.tensor_depth = c.depth;
  sim::Cluster cluster(sim::Topology::uniform(c.size, 100e9));
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, pcfg);
  ctx.set_comm_dtype(t::Dtype::kF32);  // serial-equivalence test: fp32 wire

  std::vector<float> losses(static_cast<std::size_t>(c.size));
  cluster.run([&](int g) {
    models::TransformerClassifier m(tp::Env{&ctx, g}, cfg);
    losses[static_cast<std::size_t>(g)] = m.train_batch(x, y);
  });
  for (int g = 0; g < c.size; ++g)
    EXPECT_NEAR(losses[static_cast<std::size_t>(g)], ref, 2e-4f)
        << "rank " << g << " mode " << core::to_string(c.mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TransformerClassifierModes,
    ::testing::Values(TcCase{core::TpMode::k1d, 2, 1},
                      TcCase{core::TpMode::k2d, 4, 1},
                      TcCase{core::TpMode::k2p5d, 8, 2},
                      TcCase{core::TpMode::k3d, 8, 1}));

TEST(TransformerClassifierModes, TrainsToLowerLoss) {
  auto cfg = tc_config();
  models::TransformerClassifier m(cfg);
  ca::data::SyntheticClassification ds(1024, cfg.patches * cfg.patch_dim, 8, 19);
  float first = 0.0f, last = 0.0f;
  for (int s = 0; s < 20; ++s) {
    auto flat = ds.batch_features(s * 8, 8);
    auto x = flat.reshape(t::Shape{8, cfg.patches, cfg.patch_dim});
    auto y = ds.batch_labels(s * 8, 8);
    for (nn::Parameter* p : m.parameters()) p->grad.fill(0.0f);
    const float loss = m.train_batch(x, y);
    for (nn::Parameter* p : m.parameters()) t::axpy_(p->value, -0.05f, p->grad);
    if (s == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(Gpt, VocabParallelScalesToFourRanks) {
  auto cfg = tiny_gpt();  // vocab 64 % 4 == 0
  cfg.heads = 4;          // 1D attention needs heads % p == 0
  ca::data::SyntheticTokens stream(cfg.vocab, 8);
  auto toks = stream.tokens(0, 2 * cfg.seq);

  models::GptModel serial(cfg);
  const float ref = serial.train_batch(toks, 2);

  core::Config pcfg;
  pcfg.tensor_parallel_size = 4;
  pcfg.tensor_mode = core::TpMode::k1d;
  sim::Cluster cluster(sim::Topology::uniform(4, 100e9));
  col::Backend backend(cluster);
  core::ParallelContext ctx(backend, pcfg);
  ctx.set_comm_dtype(t::Dtype::kF32);  // serial-equivalence test: fp32 wire

  std::vector<float> losses(4);
  cluster.run([&](int g) {
    models::GptModel m(tp::Env{&ctx, g}, models::GptModel::Mode::kTensor1D, cfg);
    losses[static_cast<std::size_t>(g)] = m.train_batch(toks, 2);
    // a second step after zeroing grads must also work (state is reusable)
    for (nn::Parameter* p : m.parameters()) p->grad.fill(0.0f);
    m.train_batch(toks, 2);
  });
  for (int g = 0; g < 4; ++g)
    EXPECT_NEAR(losses[static_cast<std::size_t>(g)], ref, 1e-4f) << g;
}

// ---- pipeline stage partitioning --------------------------------------------------

#include "models/pp_stages.hpp"

TEST(PpStages, BalancedContiguousPartition) {
  // 10 layers over 4 stages: 3,3,2,2 — contiguous and exhaustive
  const auto p = models::partition_layers(10, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].begin, 0);
  EXPECT_EQ(p[0].size(), 3);
  EXPECT_EQ(p[1].size(), 3);
  EXPECT_EQ(p[2].size(), 2);
  EXPECT_EQ(p[3].size(), 2);
  for (std::size_t i = 1; i < p.size(); ++i)
    EXPECT_EQ(p[i].begin, p[i - 1].end);
  EXPECT_EQ(p.back().end, 10);
}

TEST(PpStages, InterleavedChunksAlternateRanks) {
  // 9 layers, 2 stages x 2 chunks: virtual stages get 3,2,2,2 layers and
  // rank s owns virtual stages s and 2 + s
  const auto p = models::partition_layers(9, 2, 2);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].size(), 3);
  EXPECT_EQ(p[1].size(), 2);
  const auto r0 = models::rank_stage_ranges(p, 2, 0);
  const auto r1 = models::rank_stage_ranges(p, 2, 1);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].begin, p[0].begin);
  EXPECT_EQ(r0[1].begin, p[2].begin);  // chunk 1 = virtual stage 2
  EXPECT_EQ(r1[0].begin, p[1].begin);
  EXPECT_EQ(r1[1].begin, p[3].begin);
  // the union of both ranks' chunk ranges covers every layer exactly once
  int covered = 0;
  for (const auto& r : r0) covered += r.size();
  for (const auto& r : r1) covered += r.size();
  EXPECT_EQ(covered, 9);
}
